// Package controlplane simulates the control plane C of the Core P4
// semantics: the partial map from (table, key values, partial action
// references) to fully-applied action references.
//
// A switch program declares tables; the control plane installs entries in
// them at run time. An entry pairs match patterns (one per table key, each
// using the key's match kind) with the name of one of the table's actions
// and the values of the action's control-plane-supplied (directionless)
// parameters. Lookup implements the three match kinds of the paper's
// examples:
//
//	exact   — the key must equal the pattern value;
//	lpm     — longest-prefix match: the entry whose prefix is longest
//	          among those whose prefix bits equal the key's wins;
//	ternary — masked match (key & mask == value & mask), disambiguated
//	          by entry priority (higher wins).
//
// The non-interference theorem's control-plane assumption (Definition C.8:
// both runs see the same entries, and installed arguments are well-typed)
// corresponds here to using one ControlPlane instance for both runs and to
// Install validating widths.
package controlplane

import (
	"fmt"
	"sort"
)

// Pattern matches a single key value.
type Pattern struct {
	// Kind is "exact", "lpm", or "ternary".
	Kind string
	// Value is the pattern value (exact), prefix (lpm), or value (ternary).
	Value uint64
	// PrefixLen is the number of significant leading bits for lpm.
	PrefixLen int
	// Mask is the ternary mask (ignored bits are 0).
	Mask uint64
	// Width is the key width in bits (1..64); used to position lpm
	// prefixes.
	Width int
}

// Exact returns an exact-match pattern for a w-bit key.
func Exact(w int, v uint64) Pattern { return Pattern{Kind: "exact", Value: v, Width: w} }

// LPM returns a longest-prefix-match pattern matching the top plen bits of
// a w-bit key against the top plen bits of prefix.
func LPM(w int, prefix uint64, plen int) Pattern {
	return Pattern{Kind: "lpm", Value: prefix, PrefixLen: plen, Width: w}
}

// Ternary returns a masked pattern for a w-bit key.
func Ternary(w int, v, mask uint64) Pattern {
	return Pattern{Kind: "ternary", Value: v, Mask: mask, Width: w}
}

// Wildcard returns a ternary pattern matching any w-bit key.
func Wildcard(w int) Pattern { return Ternary(w, 0, 0) }

// matches reports whether the pattern accepts key.
func (p Pattern) matches(key uint64) bool {
	switch p.Kind {
	case "exact":
		return key == p.Value
	case "lpm":
		if p.PrefixLen <= 0 {
			return true
		}
		shift := uint(p.Width - p.PrefixLen)
		return key>>shift == p.Value>>shift
	case "ternary":
		return key&p.Mask == p.Value&p.Mask
	default:
		return false
	}
}

// String renders the pattern.
func (p Pattern) String() string {
	switch p.Kind {
	case "exact":
		return fmt.Sprintf("%d", p.Value)
	case "lpm":
		return fmt.Sprintf("%d/%d", p.Value, p.PrefixLen)
	case "ternary":
		return fmt.Sprintf("%d &&& %#x", p.Value, p.Mask)
	default:
		return "?"
	}
}

// Entry is one installed table entry.
type Entry struct {
	Patterns []Pattern
	// Action names one of the table's declared actions.
	Action string
	// Args are the control-plane-supplied argument values for the
	// action's directionless parameters, in declaration order.
	Args []uint64
	// Priority breaks ties among matching ternary entries; higher wins.
	Priority int
}

// ActionCall is a fully-applied action reference returned by Lookup.
type ActionCall struct {
	Action string
	Args   []uint64
}

// Table is the installed state of one match-action table.
type Table struct {
	Name    string
	Entries []Entry
	// Default, if non-nil, is invoked when no entry matches.
	Default *ActionCall
	// KeyKinds are the declared match kinds of the table's keys, fixed at
	// install time and validated on every Install.
	KeyKinds []string
}

// ControlPlane holds installed entries for all tables of a program.
type ControlPlane struct {
	tables map[string]*Table
}

// New returns an empty control plane.
func New() *ControlPlane { return &ControlPlane{tables: map[string]*Table{}} }

// DeclareTable registers a table and its key match kinds. Re-declaring a
// table resets its entries.
func (cp *ControlPlane) DeclareTable(name string, keyKinds []string) {
	cp.tables[name] = &Table{Name: name, KeyKinds: append([]string(nil), keyKinds...)}
}

// Table returns the named table, or nil.
func (cp *ControlPlane) Table(name string) *Table {
	return cp.tables[name]
}

// Install adds an entry to the named table, validating pattern count and
// kinds against the declaration.
func (cp *ControlPlane) Install(table string, e Entry) error {
	t, ok := cp.tables[table]
	if !ok {
		return fmt.Errorf("controlplane: no table %q declared", table)
	}
	if len(e.Patterns) != len(t.KeyKinds) {
		return fmt.Errorf("controlplane: table %q has %d keys, entry has %d patterns",
			table, len(t.KeyKinds), len(e.Patterns))
	}
	for i, p := range e.Patterns {
		if p.Kind != t.KeyKinds[i] {
			return fmt.Errorf("controlplane: table %q key %d is %s, entry pattern is %s",
				table, i, t.KeyKinds[i], p.Kind)
		}
		if p.Width < 1 || p.Width > 64 {
			return fmt.Errorf("controlplane: table %q key %d: bad width %d", table, i, p.Width)
		}
		if p.Kind == "lpm" && (p.PrefixLen < 0 || p.PrefixLen > p.Width) {
			return fmt.Errorf("controlplane: table %q key %d: bad prefix length %d",
				table, i, p.PrefixLen)
		}
	}
	t.Entries = append(t.Entries, e)
	return nil
}

// SetDefault installs the default action for a table.
func (cp *ControlPlane) SetDefault(table, action string, args ...uint64) error {
	t, ok := cp.tables[table]
	if !ok {
		return fmt.Errorf("controlplane: no table %q declared", table)
	}
	t.Default = &ActionCall{Action: action, Args: args}
	return nil
}

// Lookup matches keys against the named table's entries and returns the
// fully-applied action call, or (nil, false) on a miss with no default.
// Selection rule: among matching entries, the one with the longest total
// lpm prefix wins; remaining ties go to the highest Priority, then to the
// earliest installed entry (deterministic).
func (cp *ControlPlane) Lookup(table string, keys []uint64) (*ActionCall, bool) {
	t, ok := cp.tables[table]
	if !ok {
		return nil, false
	}
	type cand struct {
		idx    int
		prefix int
		prio   int
	}
	var cands []cand
	for i, e := range t.Entries {
		if len(e.Patterns) != len(keys) {
			continue
		}
		all := true
		totalPrefix := 0
		for j, p := range e.Patterns {
			if !p.matches(keys[j]) {
				all = false
				break
			}
			if p.Kind == "lpm" {
				totalPrefix += p.PrefixLen
			}
		}
		if all {
			cands = append(cands, cand{i, totalPrefix, e.Priority})
		}
	}
	if len(cands) == 0 {
		if t.Default != nil {
			return t.Default, true
		}
		return nil, false
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].prefix != cands[b].prefix {
			return cands[a].prefix > cands[b].prefix
		}
		return cands[a].prio > cands[b].prio
	})
	e := t.Entries[cands[0].idx]
	return &ActionCall{Action: e.Action, Args: e.Args}, true
}

// Tables returns the declared table names in sorted order.
func (cp *ControlPlane) Tables() []string {
	out := make([]string, 0, len(cp.tables))
	for n := range cp.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the control plane (used to hand identical
// entries to the two runs of a non-interference experiment).
func (cp *ControlPlane) Clone() *ControlPlane {
	out := New()
	for name, t := range cp.tables {
		nt := &Table{Name: t.Name, KeyKinds: append([]string(nil), t.KeyKinds...)}
		for _, e := range t.Entries {
			ne := Entry{
				Patterns: append([]Pattern(nil), e.Patterns...),
				Action:   e.Action,
				Args:     append([]uint64(nil), e.Args...),
				Priority: e.Priority,
			}
			nt.Entries = append(nt.Entries, ne)
		}
		if t.Default != nil {
			d := *t.Default
			d.Args = append([]uint64(nil), t.Default.Args...)
			nt.Default = &d
		}
		out.tables[name] = nt
	}
	return out
}
