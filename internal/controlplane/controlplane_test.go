package controlplane

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactMatch(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"exact"})
	if err := cp.Install("t", Entry{
		Patterns: []Pattern{Exact(8, 42)}, Action: "hit", Args: []uint64{1},
	}); err != nil {
		t.Fatal(err)
	}
	if call, ok := cp.Lookup("t", []uint64{42}); !ok || call.Action != "hit" {
		t.Errorf("Lookup(42) = %v, %t", call, ok)
	}
	if _, ok := cp.Lookup("t", []uint64{41}); ok {
		t.Error("Lookup(41) matched")
	}
}

func TestDefaultAction(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"exact"})
	if err := cp.SetDefault("t", "miss", 9); err != nil {
		t.Fatal(err)
	}
	call, ok := cp.Lookup("t", []uint64{0})
	if !ok || call.Action != "miss" || len(call.Args) != 1 || call.Args[0] != 9 {
		t.Errorf("default = %v, %t", call, ok)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	cp := New()
	cp.DeclareTable("r", []string{"lpm"})
	entries := []struct {
		prefix uint64
		plen   int
		action string
	}{
		{0, 0, "any"},
		{0x0A000000, 8, "ten"},
		{0x0A010000, 16, "ten-one"},
		{0x0A010200, 24, "ten-one-two"},
	}
	for _, e := range entries {
		if err := cp.Install("r", Entry{
			Patterns: []Pattern{LPM(32, e.prefix, e.plen)}, Action: e.action,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[uint64]string{
		0x0B000001: "any",
		0x0A330001: "ten",
		0x0A010501: "ten-one",
		0x0A010203: "ten-one-two",
	}
	for key, want := range cases {
		call, ok := cp.Lookup("r", []uint64{key})
		if !ok || call.Action != want {
			t.Errorf("Lookup(%#x) = %v, want %s", key, call, want)
		}
	}
}

func TestTernaryPriority(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"ternary"})
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cp.Install("t", Entry{Patterns: []Pattern{Ternary(8, 0x00, 0x0F)}, Action: "lownib", Priority: 1}))
	must(cp.Install("t", Entry{Patterns: []Pattern{Ternary(8, 0x00, 0xF0)}, Action: "highnib", Priority: 2}))
	// 0x00 matches both; priority 2 wins.
	call, ok := cp.Lookup("t", []uint64{0x00})
	if !ok || call.Action != "highnib" {
		t.Errorf("priority resolution: %v", call)
	}
	// 0x30 matches only the low-nibble pattern.
	call, ok = cp.Lookup("t", []uint64{0x30})
	if !ok || call.Action != "lownib" {
		t.Errorf("0x30: %v", call)
	}
	// 0x03 matches only the high-nibble pattern.
	call, ok = cp.Lookup("t", []uint64{0x03})
	if !ok || call.Action != "highnib" {
		t.Errorf("0x03: %v", call)
	}
}

func TestMultiKey(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"exact", "ternary"})
	if err := cp.Install("t", Entry{
		Patterns: []Pattern{Exact(32, 5), Wildcard(32)}, Action: "go",
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.Lookup("t", []uint64{5, 12345}); !ok {
		t.Error("multi-key match failed")
	}
	if _, ok := cp.Lookup("t", []uint64{6, 12345}); ok {
		t.Error("multi-key matched wrong first key")
	}
}

func TestInstallValidation(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"exact"})
	cases := []Entry{
		{Patterns: []Pattern{Exact(8, 1), Exact(8, 2)}, Action: "a"}, // arity
		{Patterns: []Pattern{LPM(8, 1, 4)}, Action: "a"},             // kind mismatch
		{Patterns: []Pattern{Exact(0, 1)}, Action: "a"},              // width 0
		{Patterns: []Pattern{Exact(65, 1)}, Action: "a"},             // width 65
	}
	for i, e := range cases {
		if err := cp.Install("t", e); err == nil {
			t.Errorf("entry %d installed, want error", i)
		}
	}
	if err := cp.Install("nosuch", Entry{}); err == nil {
		t.Error("install into undeclared table succeeded")
	}
	if err := cp.SetDefault("nosuch", "a"); err == nil {
		t.Error("default on undeclared table succeeded")
	}
	cp2 := New()
	cp2.DeclareTable("l", []string{"lpm"})
	if err := cp2.Install("l", Entry{Patterns: []Pattern{LPM(8, 0, 9)}, Action: "a"}); err == nil {
		t.Error("prefix longer than width accepted")
	}
}

func TestLookupUndeclared(t *testing.T) {
	cp := New()
	if _, ok := cp.Lookup("ghost", []uint64{1}); ok {
		t.Error("lookup on undeclared table matched")
	}
}

func TestCloneIsDeep(t *testing.T) {
	cp := New()
	cp.DeclareTable("t", []string{"exact"})
	if err := cp.Install("t", Entry{Patterns: []Pattern{Exact(8, 1)}, Action: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetDefault("t", "d"); err != nil {
		t.Fatal(err)
	}
	clone := cp.Clone()
	// Mutate the clone; the original must be unaffected.
	if err := clone.Install("t", Entry{Patterns: []Pattern{Exact(8, 2)}, Action: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := clone.SetDefault("t", "d2"); err != nil {
		t.Fatal(err)
	}
	if call, _ := cp.Lookup("t", []uint64{2}); call.Action == "b" {
		t.Error("clone mutation leaked into original")
	}
	call, _ := cp.Lookup("t", []uint64{99})
	if call.Action != "d" {
		t.Errorf("original default changed to %v", call)
	}
	if got := len(cp.Tables()); got != 1 {
		t.Errorf("Tables() = %d", got)
	}
}

func TestDeterministicLookup(t *testing.T) {
	// With equal priorities and prefix lengths, the earliest installed
	// entry wins, and repeated lookups agree (determinism matters for the
	// non-interference harness, which reuses one CP across two runs).
	cp := New()
	cp.DeclareTable("t", []string{"ternary"})
	for i, a := range []string{"first", "second", "third"} {
		if err := cp.Install("t", Entry{Patterns: []Pattern{Wildcard(8)}, Action: a, Priority: 0}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	for i := 0; i < 10; i++ {
		call, ok := cp.Lookup("t", []uint64{uint64(i)})
		if !ok || call.Action != "first" {
			t.Fatalf("lookup %d = %v", i, call)
		}
	}
}

// TestLPMPropertyAgainstReference cross-checks pattern matching against a
// straightforward reference implementation on random keys.
func TestLPMPropertyAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(prefixSeed uint64, plen8 uint8, keySeed uint64) bool {
		w := 32
		plen := int(plen8) % (w + 1)
		prefix := prefixSeed & 0xFFFFFFFF
		key := keySeed & 0xFFFFFFFF
		p := LPM(w, prefix, plen)
		want := true
		for b := 0; b < plen; b++ {
			bit := uint(w - 1 - b)
			if (prefix>>bit)&1 != (key>>bit)&1 {
				want = false
				break
			}
		}
		return p.matches(key) == want
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTernaryPropertyAgainstReference does the same for ternary patterns.
func TestTernaryPropertyAgainstReference(t *testing.T) {
	f := func(v, mask, key uint64) bool {
		p := Ternary(64, v, mask)
		want := (key & mask) == (v & mask)
		return p.matches(key) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternStrings(t *testing.T) {
	if got := Exact(8, 5).String(); got != "5" {
		t.Errorf("exact renders %q", got)
	}
	if got := LPM(32, 10, 8).String(); got != "10/8" {
		t.Errorf("lpm renders %q", got)
	}
	if got := Ternary(8, 1, 0xF).String(); got != "1 &&& 0xf" {
		t.Errorf("ternary renders %q", got)
	}
}
