// Package lexer tokenizes the P4 subset accepted by the P4BID frontend.
//
// The lexer is a conventional hand-written scanner. It understands //-line
// and /* block */ comments, decimal and hexadecimal integer literals, P4's
// width-prefixed literals (8w255 is split into the value with its width
// recorded in the literal spelling), and all the punctuation of the core
// grammar, including the angle brackets that do double duty as comparison
// operators and as the delimiters of security-annotated types <bit<8>, low>.
// Disambiguation of < is left to the parser, which has the grammatical
// context; the lexer always emits LT/GT/SHL/SHR/LEQ/GEQ greedily except
// that it never joins >> when lexing inside a type context marker — the
// parser instead asks for SplitShr when it needs two closing angles.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// Lexer scans an input buffer into tokens.
type Lexer struct {
	src  string
	file string
	off  int // byte offset of next rune
	line int
	col  int

	peeked []token.Token // pushback buffer used by the parser
}

// New returns a lexer over src; file is used in positions (may be empty).
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errorf builds a positioned lexical error.
func (l *Lexer) errorf(p token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace and comments; it returns an error
// for an unterminated block comment.
func (l *Lexer) skipSpaceAndComments() error {
	for {
		for isSpace(l.peekByte()) {
			l.advance()
		}
		if l.peekByte() == '/' && l.peekByte2() == '/' {
			for l.peekByte() != 0 && l.peekByte() != '\n' {
				l.advance()
			}
			continue
		}
		if l.peekByte() == '/' && l.peekByte2() == '*' {
			p := l.pos()
			l.advance()
			l.advance()
			for {
				if l.peekByte() == 0 {
					return l.errorf(p, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
			continue
		}
		return nil
	}
}

// Next returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() (token.Token, error) {
	if n := len(l.peeked); n > 0 {
		t := l.peeked[n-1]
		l.peeked = l.peeked[:n-1]
		return t, nil
	}
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{Kind: token.ILLEGAL, Pos: l.pos()}, err
	}
	p := l.pos()
	c := l.peekByte()
	switch {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: p}, nil
	case isIdentStart(c):
		start := l.off
		for isIdentCont(l.peekByte()) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return token.Token{Kind: token.LookupIdent(lit), Lit: lit, Pos: p}, nil
	case isDigit(c):
		return l.lexNumber(p)
	}
	l.advance()
	two := func(second byte, k2, k1 token.Kind) token.Token {
		if l.peekByte() == second {
			l.advance()
			return token.Token{Kind: k2, Pos: p}
		}
		return token.Token{Kind: k1, Pos: p}
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: p}, nil
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: p}, nil
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: p}, nil
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: p}, nil
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: p}, nil
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: p}, nil
	case ',':
		return token.Token{Kind: token.COMMA, Pos: p}, nil
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: p}, nil
	case ':':
		return token.Token{Kind: token.COLON, Pos: p}, nil
	case '.':
		return token.Token{Kind: token.DOT, Pos: p}, nil
	case '@':
		return token.Token{Kind: token.AT, Pos: p}, nil
	case '+':
		return token.Token{Kind: token.PLUS, Pos: p}, nil
	case '-':
		return token.Token{Kind: token.MINUS, Pos: p}, nil
	case '*':
		return token.Token{Kind: token.STAR, Pos: p}, nil
	case '/':
		return token.Token{Kind: token.SLASH, Pos: p}, nil
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: p}, nil
	case '^':
		return token.Token{Kind: token.CARET, Pos: p}, nil
	case '~':
		return token.Token{Kind: token.BITNOT, Pos: p}, nil
	case '&':
		return two('&', token.AND, token.AMP), nil
	case '|':
		return two('|', token.OR, token.PIPE), nil
	case '=':
		return two('=', token.EQ, token.ASSIGN), nil
	case '!':
		return two('=', token.NEQ, token.NOT), nil
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: p}, nil
		}
		return two('=', token.LEQ, token.LT), nil
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: p}, nil
		}
		return two('=', token.GEQ, token.GT), nil
	}
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: p},
		l.errorf(p, "unexpected character %q", c)
}

// lexNumber scans decimal, hex (0x...), and width-prefixed (8w255, 4w0xF)
// literals. Width-prefixed literals keep their full spelling in Lit; the
// parser decodes them.
func (l *Lexer) lexNumber(p token.Pos) (token.Token, error) {
	start := l.off
	for isDigit(l.peekByte()) {
		l.advance()
	}
	// Width-prefixed literal: <width>w<value>.
	if l.peekByte() == 'w' && (isDigit(l.peekByte2()) || l.peekByte2() == '0') {
		l.advance() // w
		if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.advance()
			l.advance()
			if !isHexDigit(l.peekByte()) {
				return token.Token{Kind: token.ILLEGAL, Pos: p}, l.errorf(p, "malformed hex literal")
			}
			for isHexDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			for isDigit(l.peekByte()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: p}, nil
	}
	// Hex literal.
	if l.off-start == 1 && l.src[start] == '0' && (l.peekByte() == 'x' || l.peekByte() == 'X') {
		l.advance()
		if !isHexDigit(l.peekByte()) {
			return token.Token{Kind: token.ILLEGAL, Pos: p}, l.errorf(p, "malformed hex literal")
		}
		for isHexDigit(l.peekByte()) {
			l.advance()
		}
	}
	lit := l.src[start:l.off]
	if isIdentStart(l.peekByte()) {
		return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: p},
			l.errorf(p, "identifier character immediately after number %q", lit)
	}
	return token.Token{Kind: token.INT, Lit: lit, Pos: p}, nil
}

// Push returns a token to the stream; the next call to Next yields it.
// The parser uses this for one-token splits such as turning SHR into GT GT
// when closing nested angle brackets of a type.
func (l *Lexer) Push(t token.Token) { l.peeked = append(l.peeked, t) }

// All scans the entire input, returning the tokens up to and including EOF.
// It is a convenience for tests and tooling.
func (l *Lexer) All() ([]token.Token, error) {
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

// DecodeInt parses an integer literal spelling produced by the lexer and
// returns its value, its declared width (0 if none), and whether the
// spelling carried a width prefix.
func DecodeInt(lit string) (val uint64, width int, hasWidth bool, err error) {
	body := lit
	if i := strings.IndexByte(lit, 'w'); i > 0 {
		hasWidth = true
		var w uint64
		w, err = parseUint(lit[:i], 10)
		if err != nil || w == 0 || w > 64 {
			return 0, 0, true, fmt.Errorf("bad width in literal %q", lit)
		}
		width = int(w)
		body = lit[i+1:]
	}
	base := 10
	if strings.HasPrefix(body, "0x") || strings.HasPrefix(body, "0X") {
		base = 16
		body = body[2:]
	}
	val, err = parseUint(body, base)
	if err != nil {
		return 0, 0, hasWidth, fmt.Errorf("bad integer literal %q", lit)
	}
	return val, width, hasWidth, nil
}

func parseUint(s string, base int) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty numeral")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		var d uint64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		if d >= uint64(base) {
			return 0, fmt.Errorf("digit %q out of range for base %d", c, base)
		}
		nv := v*uint64(base) + d
		if nv < v {
			return 0, fmt.Errorf("overflow")
		}
		v = nv
	}
	return v, nil
}
