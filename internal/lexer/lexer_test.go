package lexer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := New("t", src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `control C ( inout bit<8> x ) { apply { x = x + 1 ; } }`)
	want := []token.Kind{
		token.CONTROL, token.IDENT, token.LPAREN, token.INOUT, token.BIT,
		token.LT, token.INT, token.GT, token.IDENT, token.RPAREN,
		token.LBRACE, token.APPLY, token.LBRACE, token.IDENT, token.ASSIGN,
		token.IDENT, token.PLUS, token.INT, token.SEMICOLON, token.RBRACE,
		token.RBRACE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"==": token.EQ, "!=": token.NEQ, "<=": token.LEQ, ">=": token.GEQ,
		"<<": token.SHL, ">>": token.SHR, "&&": token.AND, "||": token.OR,
		"&": token.AMP, "|": token.PIPE, "^": token.CARET, "~": token.BITNOT,
		"!": token.NOT, "%": token.PERCENT, "@": token.AT, ".": token.DOT,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if got[0] != want {
			t.Errorf("%q: got %s, want %s", src, got[0], want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, `
// line comment
x /* block
   comment */ y // trailing
`)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, err := New("t", "x /* never ends").All()
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v, want unterminated block comment", err)
	}
}

func TestNumbers(t *testing.T) {
	toks, err := New("t", "0 42 0x1F 8w255 4w0xF 16w0").All()
	if err != nil {
		t.Fatal(err)
	}
	lits := []string{"0", "42", "0x1F", "8w255", "4w0xF", "16w0"}
	for i, want := range lits {
		if toks[i].Kind != token.INT || toks[i].Lit != want {
			t.Errorf("token %d: %v, want INT %q", i, toks[i], want)
		}
	}
}

func TestDecodeInt(t *testing.T) {
	cases := []struct {
		lit      string
		val      uint64
		width    int
		hasWidth bool
		ok       bool
	}{
		{"0", 0, 0, false, true},
		{"42", 42, 0, false, true},
		{"0x1F", 31, 0, false, true},
		{"8w255", 255, 8, true, true},
		{"4w0xF", 15, 4, true, true},
		{"0w5", 0, 0, true, false},  // zero width
		{"65w1", 0, 0, true, false}, // width too large
	}
	for _, c := range cases {
		v, w, hw, err := DecodeInt(c.lit)
		if c.ok && (err != nil || v != c.val || w != c.width || hw != c.hasWidth) {
			t.Errorf("DecodeInt(%q) = %d,%d,%t,%v; want %d,%d,%t", c.lit, v, w, hw, err, c.val, c.width, c.hasWidth)
		}
		if !c.ok && err == nil {
			t.Errorf("DecodeInt(%q) succeeded, want error", c.lit)
		}
	}
}

func TestBadNumberSuffix(t *testing.T) {
	_, err := New("t", "42abc").All()
	if err == nil {
		t.Fatal("42abc lexed without error")
	}
}

func TestIllegalCharacter(t *testing.T) {
	_, err := New("t", "x $ y").All()
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
}

func TestPositions(t *testing.T) {
	toks, err := New("f.p4", "a\n  b\n\tc").All()
	if err != nil {
		t.Fatal(err)
	}
	type pos struct{ line, col int }
	want := []pos{{1, 1}, {2, 3}, {3, 2}}
	for i, w := range want {
		if toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d at %s, want %d:%d", i, toks[i].Pos, w.line, w.col)
		}
		if toks[i].Pos.File != "f.p4" {
			t.Errorf("token %d file %q", i, toks[i].Pos.File)
		}
	}
}

func TestPushback(t *testing.T) {
	l := New("t", "a b")
	t1, _ := l.Next()
	l.Push(t1)
	t1b, _ := l.Next()
	if t1 != t1b {
		t.Fatalf("pushback: got %v, want %v", t1b, t1)
	}
	t2, _ := l.Next()
	if t2.Lit != "b" {
		t.Fatalf("after pushback: got %v", t2)
	}
}

func TestKeywordsLookup(t *testing.T) {
	for _, kw := range []string{"control", "action", "table", "apply", "if", "else",
		"exit", "return", "header", "struct", "typedef", "match_kind", "in",
		"inout", "out", "bit", "bool", "int", "void", "function", "const"} {
		if token.LookupIdent(kw) == token.IDENT {
			t.Errorf("%q should be a keyword", kw)
		}
	}
	for _, id := range []string{"key", "actions", "default_action", "entries",
		"hdr", "low", "high", "x"} {
		if token.LookupIdent(id) != token.IDENT {
			t.Errorf("%q should be an identifier", id)
		}
	}
}

// TestLexerNeverPanics fuzzes the lexer with random byte strings: it must
// return tokens or an error, never panic, and always terminate.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		l := New("fuzz", string(b))
		for i := 0; i < int(n)+2; i++ {
			tk, err := l.Next()
			if err != nil {
				return true
			}
			if tk.Kind == token.EOF {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripStability: lexing the rendered token stream of a valid
// program yields the same kinds (spacing-insensitive).
func TestRoundTripStability(t *testing.T) {
	src := `control C(inout bit<8> x) { apply { if (x == 8w3) { x = x << 1; } } }`
	first, err := New("a", src).All()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tk := range first {
		if tk.Kind == token.EOF {
			break
		}
		if tk.Lit != "" {
			b.WriteString(tk.Lit)
		} else {
			b.WriteString(tk.Kind.String())
		}
		b.WriteString(" ")
	}
	second, err := New("b", b.String()).All()
	if err != nil {
		t.Fatalf("relex: %v\n%s", err, b.String())
	}
	if len(first) != len(second) {
		t.Fatalf("token count changed: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Kind != second[i].Kind {
			t.Errorf("token %d kind changed: %s vs %s", i, first[i].Kind, second[i].Kind)
		}
	}
}
