package gen_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/lattice"
)

// TestConfigLatticeValidation: the Lattice spec is handled explicitly —
// empty defaults to two-point, bad specs are rejected by Validate (and
// panic in Random, so misconfiguration cannot silently emit the wrong
// lattice's programs, which is what the pre-Lattice generator effectively
// did by ignoring height entirely).
func TestConfigLatticeValidation(t *testing.T) {
	for _, good := range []string{"", "two-point", "diamond", "chain:4", "chain-8", "nparty:3", "powerset:2", "product:two-point,two-point"} {
		cfg := gen.Config{Lattice: good}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"chain:0", "chain:x", "chain:4x", "nparty:-1", "powerset:0", "powerset:9", "tall"} {
		cfg := gen.Config{Lattice: bad}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%q) accepted a spec Random cannot honor", bad)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("Random with an invalid lattice spec must panic (Validate was skipped)")
		}
	}()
	gen.Random(rand.New(rand.NewSource(1)), gen.Config{Lattice: "nope"})
}

// TestRandomChainLabelEmission locks chain-N generation in: programs
// generated against chain:4 annotate fields at every chain level —
// including the intermediate labels L1 and L2 that no two-point program
// can carry — and still resolve and base-check (the property sweep
// asserts that part; here we pin the emission itself).
func TestRandomChainLabelEmission(t *testing.T) {
	cfg := gen.Config{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: true, Lattice: "chain:4"}
	lat := lattice.Chain(4)
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		src := gen.Random(rand.New(rand.NewSource(seed)), cfg)
		mustResolve(t, fmt.Sprintf("chain4-seed-%d.p4", seed), src, lat)
		for _, e := range lat.Elements() {
			if strings.Contains(src, "<bit<8>, "+e.Name()+">") {
				seen[e.Name()] = true
			}
		}
	}
	for _, want := range []string{"L0", "L1", "L2", "L3"} {
		if !seen[want] {
			t.Errorf("no generated program annotated a field at %s; chain height is being ignored", want)
		}
	}
}

// TestRandomPowersetLabelEmission: the label-spelling scheme end-to-end.
// Powerset elements spell as identifiers ("p_a_b"), so the generalized
// emitter can annotate fields at every subset — including the
// incomparable singletons — and the programs resolve against the
// lattice. This is the path `-lattice powerset:2` campaigns take.
func TestRandomPowersetLabelEmission(t *testing.T) {
	cfg := gen.Config{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: true, Lattice: "powerset:2"}
	lat, err := lattice.ByName("powerset:2")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		src := gen.Random(rand.New(rand.NewSource(seed)), cfg)
		mustResolve(t, fmt.Sprintf("pset2-seed-%d.p4", seed), src, lat)
		for _, e := range lat.Elements() {
			if strings.Contains(src, "<bit<8>, "+e.Name()+">") {
				seen[e.Name()] = true
			}
		}
	}
	for _, want := range []string{"p_", "p_a", "p_b", "p_a_b"} {
		if !seen[want] {
			t.Errorf("no generated program annotated a field at %s; the powerset spelling is not reaching the emitter", want)
		}
	}
}

// TestRandomProductLabelEmission: product elements spell as identifiers
// ("x_low_high"), so the generalized emitter can annotate fields at every
// pair — including the incomparable mixed ones — and the programs resolve
// against the lattice. This is the path `-lattice product:a,b` campaigns
// take (the ROADMAP's "Product() element names still don't lex" item).
func TestRandomProductLabelEmission(t *testing.T) {
	const spec = "product:two-point,two-point"
	cfg := gen.Config{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: true, Lattice: spec}
	lat, err := lattice.ByName(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		src := gen.Random(rand.New(rand.NewSource(seed)), cfg)
		mustResolve(t, fmt.Sprintf("prod-seed-%d.p4", seed), src, lat)
		for _, e := range lat.Elements() {
			if strings.Contains(src, "<bit<8>, "+e.Name()+">") {
				seen[e.Name()] = true
			}
		}
	}
	for _, want := range []string{"x_low_low", "x_low_high", "x_high_low", "x_high_high"} {
		if !seen[want] {
			t.Errorf("no generated program annotated a field at %s; the product spelling is not reaching the emitter", want)
		}
	}
}

// TestRandomTwoPointUnchanged pins the two-point emitter byte-for-byte:
// recorded corpus metadata promises that GenSeed regenerates the original
// program, so the Lattice extension must not perturb the legacy stream.
func TestRandomTwoPointUnchanged(t *testing.T) {
	cfg := gen.DefaultConfig()
	src := gen.Random(rand.New(rand.NewSource(1)), cfg)
	withSpec := cfg
	withSpec.Lattice = "two-point"
	src2 := gen.Random(rand.New(rand.NewSource(1)), withSpec)
	if src != src2 {
		t.Fatal("spelling the two-point lattice explicitly changed the generated program")
	}
	// The legacy emitter's shape: low/high field pairs, no element-indexed
	// groups.
	if !strings.Contains(src, "<bit<8>, low> lo0;") || strings.Contains(src, "f0_0") {
		t.Fatalf("two-point emitter shape changed:\n%s", src)
	}
}
