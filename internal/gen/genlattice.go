// Generalized Random emitter for non-two-point lattices: chain-N, n-party
// diamonds, and the four-point diamond. The two-point emitter in gen.go is
// kept verbatim (and byte-stable) for compatibility with recorded regen
// seeds; this file is its generalization to an arbitrary finite lattice.
//
// The emitted shape mirrors the two-point one — a single labelled header,
// optional actions, a random apply block — but with one field group per
// lattice element:
//
//	header data_t {
//	    <bit<8>, E0> f0_0; ... f0_{NumFields-1};
//	    ...
//	    <bool, E0> b0; ...
//	}
//
// Label pairs are drawn against the configured order: most assignments
// respect it (rhs ⊑ lhs and pc ⊑ lhs, so a useful fraction of programs
// typecheck), a minority deliberately violate it so every rejection rule
// is exercised at every lattice height — including flows between
// incomparable elements, which two-point programs cannot express.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lattice"
)

// lgen carries the generalized generator's wiring: the element order as a
// precomputed ⊑ matrix, so label draws are index arithmetic.
type lgen struct {
	rng  *rand.Rand
	cfg  Config
	lat  lattice.Lattice
	elem []lattice.Label
	leq  [][]bool
	join [][]int
	bot  int
}

func newLgen(rng *rand.Rand, cfg Config, lat lattice.Lattice) *lgen {
	elem := lat.Elements()
	n := len(elem)
	g := &lgen{rng: rng, cfg: cfg, lat: lat, elem: elem}
	g.leq = make([][]bool, n)
	g.join = make([][]int, n)
	idx := make(map[string]int, n)
	for i, e := range elem {
		idx[e.Name()] = i
	}
	for i := range elem {
		g.leq[i] = make([]bool, n)
		g.join[i] = make([]int, n)
		for j := range elem {
			g.leq[i][j] = lat.Leq(elem[i], elem[j])
			g.join[i][j] = idx[lat.Join(elem[i], elem[j]).Name()]
		}
		if elem[i] == lat.Bottom() {
			g.bot = i
		}
	}
	return g
}

// randomLattice emits one program against lat (never two-point here).
func randomLattice(rng *rand.Rand, cfg Config, lat lattice.Lattice) string {
	g := newLgen(rng, cfg, lat)
	var b strings.Builder
	b.WriteString("header data_t {\n")
	for i, e := range g.elem {
		for j := 0; j < cfg.NumFields; j++ {
			fmt.Fprintf(&b, "    <bit<8>, %s> f%d_%d;\n", e.Name(), i, j)
		}
	}
	for i, e := range g.elem {
		fmt.Fprintf(&b, "    <bool, %s> b%d;\n", e.Name(), i)
	}
	b.WriteString("}\nstruct headers { data_t d; }\n")
	b.WriteString("control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {\n")
	if cfg.WithActions {
		// As in the two-point emitter: action bodies are generated at pc ⊥
		// and never call actions themselves.
		bodyCfg := cfg
		bodyCfg.WithActions = false
		bodyGen := newLgen(rng, bodyCfg, lat)
		for i := 0; i < 2; i++ {
			fmt.Fprintf(&b, "    action act%d() {\n", i)
			bodyGen.block(&b, 2, 2, bodyGen.bot)
			b.WriteString("    }\n")
		}
	}
	b.WriteString("    apply {\n")
	g.block(&b, cfg.MaxDepth, cfg.MaxStmts, g.bot)
	b.WriteString("    }\n}\n")
	return b.String()
}

// downSet returns the element indices ⊑ max (never empty: max is in it).
func (g *lgen) downSet(max int) []int {
	var out []int
	for j := range g.elem {
		if g.leq[j][max] {
			out = append(out, j)
		}
	}
	return out
}

// upSet returns the element indices ⊒ min (never empty: min is in it).
func (g *lgen) upSet(min int) []int {
	var out []int
	for j := range g.elem {
		if g.leq[min][j] {
			out = append(out, j)
		}
	}
	return out
}

func (g *lgen) pick(set []int) int { return set[g.rng.Intn(len(set))] }

// field returns a random bit field at exactly element li.
func (g *lgen) field(li int) string {
	return fmt.Sprintf("hdr.d.f%d_%d", li, g.rng.Intn(g.cfg.NumFields))
}

// bitExpr returns a random bit<8> expression whose label is ⊑ elem[max]
// (operands are fields from max's down-set, or literals).
func (g *lgen) bitExpr(depth, max int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("8w%d", g.rng.Intn(256))
		}
		return g.field(g.pick(g.downSet(max)))
	}
	ops := []string{"+", "-", "&", "|", "^"}
	return fmt.Sprintf("(%s %s %s)",
		g.bitExpr(depth-1, max), ops[g.rng.Intn(len(ops))], g.bitExpr(depth-1, max))
}

// boolExpr returns a random bool expression whose label is ⊑ elem[max].
func (g *lgen) boolExpr(depth, max int) string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("hdr.d.b%d", g.pick(g.downSet(max)))
	case 1:
		return fmt.Sprintf("(%s == %s)", g.bitExpr(depth-1, max), g.bitExpr(depth-1, max))
	case 2:
		return fmt.Sprintf("(%s > %s)", g.bitExpr(depth-1, max), g.bitExpr(depth-1, max))
	default:
		if depth <= 0 {
			return fmt.Sprintf("hdr.d.b%d", g.pick(g.downSet(max)))
		}
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1, max), g.boolExpr(depth-1, max))
	}
}

// chooseTarget picks an assignment's (lhs element, rhs label bound) under
// context pc. Most draws typecheck by construction: pc ⊑ lhs and the rhs
// bound is lhs itself. A minority pick both ends freely, probing explicit
// flows, implicit flows, and incomparable-element flows alike.
func (g *lgen) chooseTarget(pc int) (lhs, rhsMax int) {
	if g.rng.Intn(8) == 0 { // violation candidate
		return g.rng.Intn(len(g.elem)), g.rng.Intn(len(g.elem))
	}
	lhs = g.pick(g.upSet(pc))
	return lhs, lhs
}

func (g *lgen) block(b *strings.Builder, depth, maxStmts, pc int) {
	n := 1 + g.rng.Intn(maxStmts)
	for i := 0; i < n; i++ {
		g.stmt(b, depth, pc)
	}
}

func (g *lgen) stmt(b *strings.Builder, depth, pc int) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 5 || depth <= 0: // bit assignment
		lhs, rhsMax := g.chooseTarget(pc)
		fmt.Fprintf(b, "        %s = %s;\n", g.field(lhs), g.bitExpr(2, rhsMax))
	case choice < 6: // boolean assignment
		lhs, rhsMax := g.chooseTarget(pc)
		fmt.Fprintf(b, "        hdr.d.b%d = %s;\n", lhs, g.boolExpr(1, rhsMax))
	case choice < 9: // conditional
		guard := g.bot
		if g.rng.Intn(4) == 0 {
			guard = g.rng.Intn(len(g.elem))
		}
		fmt.Fprintf(b, "        if (%s) {\n", g.boolExpr(2, guard))
		inner := g.join[pc][guard]
		g.block(b, depth-1, 2, inner)
		if g.rng.Intn(2) == 0 {
			b.WriteString("        } else {\n")
			g.block(b, depth-1, 2, inner)
		}
		b.WriteString("        }\n")
	default: // action call (only at pc ⊥, where any body is admissible)
		if g.cfg.WithActions && pc == g.bot {
			fmt.Fprintf(b, "        act%d();\n", g.rng.Intn(2))
		} else {
			lhs, rhsMax := g.chooseTarget(pc)
			fmt.Fprintf(b, "        %s = %s;\n", g.field(lhs), g.bitExpr(1, rhsMax))
		}
	}
}
