package gen_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/progs"
)

func TestSynthIsWellTyped(t *testing.T) {
	for _, n := range []int{1, 3, 10} {
		src := gen.Synth(n, 4, 8)
		prog, err := parser.Parse("synth.p4", src)
		if err != nil {
			t.Fatalf("Synth(%d) does not parse: %v", n, err)
		}
		if res := core.Check(prog, lattice.TwoPoint()); !res.OK {
			t.Fatalf("Synth(%d) rejected by P4BID:\n%v", n, res.Err())
		}
		stripped := progs.StripAnnotations(src)
		sprog, err := parser.Parse("synth.p4", stripped)
		if err != nil {
			t.Fatalf("stripped Synth(%d) does not parse: %v", n, err)
		}
		if res := basecheck.Check(sprog); !res.OK {
			t.Fatalf("stripped Synth(%d) rejected by base checker:\n%v", n, res.Err())
		}
	}
}

func TestSynthGrowsWithSize(t *testing.T) {
	small := gen.Synth(2, 2, 4)
	large := gen.Synth(20, 4, 4)
	if len(large) <= len(small) {
		t.Error("Synth does not grow with table count")
	}
	if got := strings.Count(large, "table "); got != 20 {
		t.Errorf("Synth(20) has %d tables", got)
	}
}

func TestSynthChainIsWellTyped(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		src := gen.SynthChainLabels(n)
		prog, err := parser.Parse("chain.p4", src)
		if err != nil {
			t.Fatalf("SynthChainLabels(%d) does not parse: %v", n, err)
		}
		if res := core.Check(prog, lattice.Chain(n)); !res.OK {
			t.Fatalf("SynthChainLabels(%d) rejected:\n%v", n, res.Err())
		}
	}
}

func TestChainDownwardFlowRejected(t *testing.T) {
	// Sanity: reversing one chain assignment must be rejected.
	src := gen.SynthChainLabels(4)
	bad := strings.Replace(src, "hdr.d.f1 = hdr.d.f0 + 1;", "hdr.d.f0 = hdr.d.f1 + 1;", 1)
	if bad == src {
		t.Fatal("replacement did not apply")
	}
	prog := parser.MustParse("chain.p4", bad)
	if res := core.Check(prog, lattice.Chain(4)); res.OK {
		t.Error("downward chain flow accepted")
	}
}

func TestRandomAlwaysParses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := gen.DefaultConfig()
	for i := 0; i < 300; i++ {
		src := gen.Random(rng, cfg)
		if _, err := parser.Parse("rand.p4", src); err != nil {
			t.Fatalf("random program %d does not parse: %v\n%s", i, err, src)
		}
	}
}

func TestRandomAlwaysBaseChecks(t *testing.T) {
	// Random programs may violate flows but must never contain ordinary
	// type errors.
	rng := rand.New(rand.NewSource(4))
	cfg := gen.DefaultConfig()
	for i := 0; i < 300; i++ {
		src := gen.Random(rng, cfg)
		prog := parser.MustParse("rand.p4", src)
		if res := basecheck.Check(prog); !res.OK {
			t.Fatalf("random program %d has base type errors:\n%v\n%s", i, res.Err(), src)
		}
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	cfg := gen.DefaultConfig()
	a := gen.Random(rand.New(rand.NewSource(11)), cfg)
	b := gen.Random(rand.New(rand.NewSource(11)), cfg)
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := gen.Random(rand.New(rand.NewSource(12)), cfg)
	if a == c {
		t.Error("different seeds produced the same program")
	}
}
