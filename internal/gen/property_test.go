package gen_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/basecheck"
	"repro/internal/diag"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/resolve"
)

// mustResolve parses src and resolves its type declarations against lat,
// failing the test on any frontend error. This is the precondition the
// difftest harness relies on: generated programs never fail before the
// checkers get to disagree about them.
func mustResolve(t *testing.T, name, src string, lat lattice.Lattice) {
	t.Helper()
	prog, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("%s does not parse: %v\n%s", name, err, src)
	}
	var diags diag.List
	res := resolve.New(lat, &diags)
	res.CollectTypeDecls(prog)
	if err := diags.Err(); err != nil {
		t.Fatalf("%s does not resolve: %v\n%s", name, err, src)
	}
	if r := basecheck.Check(prog); !r.OK {
		t.Fatalf("%s rejected by the baseline checker: %v\n%s", name, r.Err(), src)
	}
}

// TestRandomAlwaysParsesAndResolves is the generator's validity property
// across 500 seeds: every gen.Random output parses, resolves under its
// campaign lattice, and base-checks cleanly (IFC acceptance is
// deliberately not guaranteed). The sweep covers the legacy two-point
// emitter and the generalized chain/n-party/diamond emitter alike.
func TestRandomAlwaysParsesAndResolves(t *testing.T) {
	cfgs := []gen.Config{
		gen.DefaultConfig(),
		{MaxDepth: 1, MaxStmts: 2, NumFields: 1, WithActions: false},
		{MaxDepth: 5, MaxStmts: 8, NumFields: 6, WithActions: true},
		{MaxDepth: 3, MaxStmts: 5, NumFields: 3, WithActions: true, Lattice: "chain:4"},
		{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: true, Lattice: "nparty:3"},
		{MaxDepth: 2, MaxStmts: 4, NumFields: 2, WithActions: false, Lattice: "diamond"},
	}
	for seed := int64(0); seed < 500; seed++ {
		cfg := cfgs[seed%int64(len(cfgs))]
		lat, err := cfg.ResolveLattice()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		src := gen.Random(rng, cfg)
		mustResolve(t, fmt.Sprintf("random-seed-%d.p4", seed), src, lat)
	}
}

// TestSynthAlwaysParsesAndResolves sweeps Synth shapes across 500
// size combinations.
func TestSynthAlwaysParsesAndResolves(t *testing.T) {
	lat := lattice.TwoPoint()
	n := 0
	for tables := 1; tables <= 10 && n < 500; tables++ {
		for actions := 1; actions <= 10 && n < 500; actions++ {
			for fields := 1; fields <= 5 && n < 500; fields++ {
				src := gen.Synth(tables, actions, fields)
				mustResolve(t, fmt.Sprintf("synth-%d-%d-%d.p4", tables, actions, fields), src, lat)
				n++
			}
		}
	}
	if n < 500 {
		t.Fatalf("swept only %d shapes, want 500", n)
	}
}

// TestSynthChainAlwaysResolves sweeps chain heights against their own
// lattices.
func TestSynthChainAlwaysResolves(t *testing.T) {
	for h := 1; h <= 32; h++ {
		src := gen.SynthChainLabels(h)
		mustResolve(t, fmt.Sprintf("chain-%d.p4", h), src, lattice.Chain(h))
	}
}
