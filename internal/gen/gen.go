// Package gen generates P4 programs in the paper's fragment, for two uses:
//
//   - Synth builds deterministic programs of a requested size (headers,
//     actions, tables, apply statements) for the scaling benchmarks that
//     extend Table 1 (checker time vs program size);
//   - Random builds randomized programs (assignments, conditionals, action
//     calls over a labelled header) for the soundness property test: every
//     randomly generated program that the IFC checker accepts must pass the
//     non-interference harness.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lattice"
)

// Synth returns a well-typed two-point-lattice program with numTables
// tables, each selecting among actionsPerTable actions over a header with
// fieldsPerHeader low fields and fieldsPerHeader high fields. The apply
// block applies every table and performs a conditional per table.
func Synth(numTables, actionsPerTable, fieldsPerHeader int) string {
	var b strings.Builder
	b.WriteString("header data_t {\n")
	for i := 0; i < fieldsPerHeader; i++ {
		fmt.Fprintf(&b, "    <bit<32>, low> lo%d;\n", i)
		fmt.Fprintf(&b, "    <bit<32>, high> hi%d;\n", i)
	}
	b.WriteString("}\nstruct headers { data_t d; }\n")
	b.WriteString("control Synth_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {\n")
	for t := 0; t < numTables; t++ {
		for a := 0; a < actionsPerTable; a++ {
			f := (t*actionsPerTable + a) % fieldsPerHeader
			// Even actions write low fields, odd actions write high.
			if a%2 == 0 {
				fmt.Fprintf(&b, "    action act_%d_%d(<bit<32>, low> v) {\n", t, a)
				fmt.Fprintf(&b, "        hdr.d.lo%d = v + hdr.d.lo%d;\n", f, (f+1)%fieldsPerHeader)
				fmt.Fprintf(&b, "        hdr.d.hi%d = hdr.d.hi%d + 1;\n", f, f)
			} else {
				fmt.Fprintf(&b, "    action act_%d_%d(<bit<32>, high> v) {\n", t, a)
				fmt.Fprintf(&b, "        hdr.d.hi%d = v ^ hdr.d.hi%d;\n", f, (f+1)%fieldsPerHeader)
			}
			b.WriteString("    }\n")
		}
		// A table whose actions all write low keys on a low field; a table
		// whose actions all write high may key on a high field. Mixed
		// tables key low.
		fmt.Fprintf(&b, "    table tbl_%d {\n", t)
		fmt.Fprintf(&b, "        key = { hdr.d.lo%d: exact; }\n", t%fieldsPerHeader)
		b.WriteString("        actions = { ")
		for a := 0; a < actionsPerTable; a++ {
			fmt.Fprintf(&b, "act_%d_%d; ", t, a)
		}
		b.WriteString("NoAction; }\n    }\n")
	}
	b.WriteString("    apply {\n")
	for t := 0; t < numTables; t++ {
		f := t % fieldsPerHeader
		fmt.Fprintf(&b, "        if (hdr.d.lo%d > 7) {\n", f)
		fmt.Fprintf(&b, "            tbl_%d.apply();\n", t)
		b.WriteString("        }\n")
		fmt.Fprintf(&b, "        if (hdr.d.hi%d > 3) {\n", f)
		fmt.Fprintf(&b, "            hdr.d.hi%d = hdr.d.hi%d + 2;\n", (f+1)%fieldsPerHeader, f)
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

// SynthChainLabels returns a program annotated against a chain-n lattice
// (labels L0..L(n-1)), with one assignment per adjacent pair, used to
// measure checker cost as lattice height grows.
func SynthChainLabels(n int) string {
	var b strings.Builder
	b.WriteString("header data_t {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    <bit<32>, L%d> f%d;\n", i, i)
	}
	b.WriteString("}\nstruct headers { data_t d; }\n")
	b.WriteString("control Chain_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {\n")
	b.WriteString("    apply {\n")
	for i := 0; i+1 < n; i++ {
		// Upward flows only: L_i ⊑ L_{i+1}.
		fmt.Fprintf(&b, "        hdr.d.f%d = hdr.d.f%d + 1;\n", i+1, i)
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

// Config controls Random program generation.
type Config struct {
	// MaxDepth bounds conditional nesting.
	MaxDepth int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// NumFields is the number of header fields emitted per lattice label.
	NumFields int
	// WithActions also generates actions and direct action calls.
	WithActions bool
	// Lattice names the campaign lattice the program is generated and
	// annotated against: "" or "two-point", "diamond", "chain:N",
	// "nparty:N", or "powerset:N" (lattice.ByName syntax). The empty spec defaults
	// explicitly to two-point; anything unresolvable is rejected by
	// Validate (and makes Random panic, so validate configs at the API
	// boundary). Non-two-point lattices switch Random to the generalized
	// emitter: one field group per lattice element, label pairs drawn
	// against the configured order.
	Lattice string
}

// DefaultConfig is a reasonable fuzzing configuration.
func DefaultConfig() Config {
	return Config{MaxDepth: 3, MaxStmts: 5, NumFields: 3, WithActions: true}
}

// withDefaults fills unset size knobs so a Config that only names a
// lattice still generates sensible programs. It never changes a field the
// caller set.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxDepth <= 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = d.MaxStmts
	}
	if c.NumFields <= 0 {
		c.NumFields = d.NumFields
	}
	return c
}

// ResolveLattice resolves the Lattice spec ("" = two-point). The error is
// the lattice package's, naming the accepted specs.
func (c Config) ResolveLattice() (lattice.Lattice, error) {
	return lattice.ByName(c.Lattice)
}

// Validate rejects configurations Random cannot generate from — today
// that is exactly an unresolvable Lattice spec. Campaign entry points
// (difftest.Run, campaign.Run, p4fuzz) call this so a bad -lattice flag is
// a usage error, not a panic mid-campaign.
func (c Config) Validate() error {
	_, err := c.ResolveLattice()
	return err
}

// Random returns a random program annotated against cfg.Lattice (the
// two-point lattice when unset). The program is syntactically valid and
// base-well-typed but may or may not typecheck under the IFC system — that
// is the point: the soundness property test accepts the programs the
// checker accepts and verifies non-interference on them, and additionally
// checks that programs the checker rejects are rejected for a flow-related
// rule.
//
// Random panics on an unresolvable cfg.Lattice; use Config.Validate at
// configuration boundaries. For the two-point lattice the emitted program
// is byte-identical to what earlier (pre-Lattice) versions generated from
// the same rng, so recorded regen seeds and resume cursors stay valid.
func Random(rng *rand.Rand, cfg Config) string {
	cfg = cfg.withDefaults()
	lat, err := cfg.ResolveLattice()
	if err != nil {
		panic(fmt.Sprintf("gen: %v (validate the Config first)", err))
	}
	if lat.Name() != "two-point" {
		return randomLattice(rng, cfg, lat)
	}
	g := &generator{rng: rng, cfg: cfg}
	var b strings.Builder
	b.WriteString("header data_t {\n")
	for i := 0; i < cfg.NumFields; i++ {
		fmt.Fprintf(&b, "    <bit<8>, low> lo%d;\n", i)
		fmt.Fprintf(&b, "    <bit<8>, high> hi%d;\n", i)
	}
	b.WriteString("    <bool, low> blo;\n    <bool, high> bhi;\n")
	b.WriteString("}\nstruct headers { data_t d; }\n")
	b.WriteString("control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {\n")
	if cfg.WithActions {
		// Action bodies must not call actions (P4 actions cannot call
		// actions, and forward references would be undeclared anyway).
		bodyCfg := cfg
		bodyCfg.WithActions = false
		bodyGen := &generator{rng: rng, cfg: bodyCfg}
		for i := 0; i < 2; i++ {
			fmt.Fprintf(&b, "    action act%d() {\n", i)
			bodyGen.block(&b, 2, 2, false)
			b.WriteString("    }\n")
		}
	}
	b.WriteString("    apply {\n")
	g.block(&b, cfg.MaxDepth, cfg.MaxStmts, false)
	b.WriteString("    }\n}\n")
	return b.String()
}

type generator struct {
	rng *rand.Rand
	cfg Config
}

func (g *generator) field(kind string) string {
	switch kind {
	case "lo":
		return fmt.Sprintf("hdr.d.lo%d", g.rng.Intn(g.cfg.NumFields))
	case "hi":
		return fmt.Sprintf("hdr.d.hi%d", g.rng.Intn(g.cfg.NumFields))
	default:
		if g.rng.Intn(2) == 0 {
			return g.field("lo")
		}
		return g.field("hi")
	}
}

// bitExpr returns a random bit<8> expression. kind "lo" restricts operands
// to low fields (so the result is low by construction); "" allows any.
func (g *generator) bitExpr(depth int, kind string) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			// Width-prefixed so bitwise operators are defined even on
			// literal-literal operands.
			return fmt.Sprintf("8w%d", g.rng.Intn(256))
		default:
			return g.field(kind)
		}
	}
	ops := []string{"+", "-", "&", "|", "^"}
	return fmt.Sprintf("(%s %s %s)",
		g.bitExpr(depth-1, kind), ops[g.rng.Intn(len(ops))], g.bitExpr(depth-1, kind))
}

// boolExpr returns a random bool expression at the given kind.
func (g *generator) boolExpr(depth int, kind string) string {
	switch g.rng.Intn(4) {
	case 0:
		if kind == "lo" || g.rng.Intn(2) == 0 {
			return "hdr.d.blo"
		}
		return "hdr.d.bhi"
	case 1:
		return fmt.Sprintf("(%s == %s)", g.bitExpr(depth-1, kind), g.bitExpr(depth-1, kind))
	case 2:
		return fmt.Sprintf("(%s > %s)", g.bitExpr(depth-1, kind), g.bitExpr(depth-1, kind))
	default:
		if depth <= 0 {
			if kind == "lo" {
				return "hdr.d.blo"
			}
			return "hdr.d.bhi"
		}
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1, kind), g.boolExpr(depth-1, kind))
	}
}

// chooseKinds picks an (lhs, rhs) label pair. Most draws respect the
// lattice (rhs ⊑ lhs) so a useful fraction of whole programs typecheck;
// a minority deliberately violate it so rejection paths are exercised too.
func (g *generator) chooseKinds(ctxHigh bool) (lhs, rhs string) {
	if ctxHigh {
		// Under a high guard only high writes can be accepted; still
		// emit an occasional low write to probe implicit-flow rejection.
		if g.rng.Intn(10) == 0 {
			return "lo", "lo"
		}
		return "hi", ""
	}
	switch g.rng.Intn(10) {
	case 0: // explicit-flow violation candidate
		return "lo", ""
	case 1, 2, 3:
		return "lo", "lo"
	default:
		return "hi", ""
	}
}

func (g *generator) block(b *strings.Builder, depth, maxStmts int, ctxHigh bool) {
	n := 1 + g.rng.Intn(maxStmts)
	for i := 0; i < n; i++ {
		g.stmt(b, depth, ctxHigh)
	}
}

func (g *generator) stmt(b *strings.Builder, depth int, ctxHigh bool) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 5 || depth <= 0: // assignment
		lhs, rhs := g.chooseKinds(ctxHigh)
		fmt.Fprintf(b, "        %s = %s;\n", g.field(lhs), g.bitExpr(2, rhs))
	case choice < 6: // boolean assignment
		lhs, rhs := g.chooseKinds(ctxHigh)
		if lhs == "lo" {
			fmt.Fprintf(b, "        hdr.d.blo = %s;\n", g.boolExpr(1, rhs))
		} else {
			fmt.Fprintf(b, "        hdr.d.bhi = %s;\n", g.boolExpr(1, rhs))
		}
	case choice < 9: // conditional
		guardKind := "lo"
		if g.rng.Intn(4) == 0 {
			guardKind = ""
		}
		high := ctxHigh || guardKind != "lo"
		fmt.Fprintf(b, "        if (%s) {\n", g.boolExpr(2, guardKind))
		g.block(b, depth-1, 2, high)
		if g.rng.Intn(2) == 0 {
			b.WriteString("        } else {\n")
			g.block(b, depth-1, 2, high)
		}
		b.WriteString("        }\n")
	default: // action call
		if g.cfg.WithActions && !ctxHigh {
			fmt.Fprintf(b, "        act%d();\n", g.rng.Intn(2))
		} else {
			lhs, rhs := g.chooseKinds(ctxHigh)
			fmt.Fprintf(b, "        %s = %s;\n", g.field(lhs), g.bitExpr(1, rhs))
		}
	}
}
