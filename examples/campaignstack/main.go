// Command campaignstack demonstrates the campaign stack twice over: the
// Session + Corpus API (the current surface) and the deprecated
// standalone wrappers (the pre-Session surface). CI builds this example
// to guarantee the deprecated wrappers keep compiling with exactly the
// signatures existing callers use — the compatibility contract of the
// Session redesign, enforced at build time.
//
// Usage: campaignstack [corpus-dir]   (default: a temp directory)
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	dir := ""
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		var err error
		if dir, err = os.MkdirTemp("", "campaignstack-*"); err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
	}
	ctx := context.Background()

	// The current surface: one Session, many operations, live events.
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithLattice("chain:4"),
		repro.WithSeed(1),
		repro.WithNIBudget(2, 8),
		repro.WithMutation(0.5),
	)
	if err != nil {
		fail(err)
	}
	events := s.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Kind == repro.EventFinding || ev.Kind == repro.EventProgress {
				fmt.Printf("  [%s] %s %s %d/%d\n", ev.Op, ev.Kind, ev.Class, ev.Done, ev.Total)
			}
		}
	}()
	rep, err := s.Campaign(ctx, 40)
	if err != nil {
		fail(err)
	}
	rr, err := s.Replay(ctx)
	if err != nil {
		fail(err)
	}
	tr, err := s.Triage()
	if err != nil {
		fail(err)
	}
	s.Close()
	<-done
	fmt.Printf("session: %d analyzed, %d findings, replay ok=%v, %d clusters\n",
		rep.Analyzed, rep.NewFindings, rr.OK(), len(tr.Clusters))

	// The corpus handle: filtered iteration and stats.
	c, err := repro.OpenCorpus(dir)
	if err != nil {
		fail(err)
	}
	for e := range c.Select(repro.CorpusFilter{Class: "rejected-clean"}) {
		fmt.Printf("  rejected-clean: %s cites %s\n", e.Name, e.Rule())
	}
	fmt.Printf("corpus: %+v\n", c.Stats())

	// The deprecated pre-Session wrappers: every signature existing
	// callers rely on, still compiling and still running the same engine.
	if _, err := repro.Campaign(ctx, repro.CampaignConfig{N: 10, Seed: 2, CorpusDir: dir, NITrials: 1}); err != nil {
		fail(err)
	}
	if _, err := repro.Replay(ctx, repro.ReplayConfig{CorpusDir: dir}); err != nil {
		fail(err)
	}
	if _, err := repro.Triage(repro.TriageConfig{CorpusDir: dir}); err != nil {
		fail(err)
	}
	if _, err := repro.Retire(ctx, repro.RetireConfig{CorpusDir: dir, PromoteDir: dir + "-retired"}); err != nil {
		fail(err)
	}
	const tiny = "header d_t { <bit<8>, low> lo; }\nstruct H { d_t d; }\ncontrol c(inout H hdr) { apply { hdr.d.lo = 8w1; } }\n"
	min, err := repro.MinimizeProgram("ex.p4", tiny, func(string) bool { return true })
	if err != nil {
		fail(err)
	}
	fmt.Printf("deprecated wrappers: compiled and ran (minimized %d -> %d bytes)\n", len(tiny), len(min))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaignstack:", err)
	os.Exit(1)
}
