// Quickstart: parse a small P4 program with security annotations, run the
// P4BID checker, watch it flag the leak, then check the fixed program.
//
// This is the Listing 1/2 scenario of the paper in miniature: a field
// derived from the private network topology must not be stored in a public
// header.
package main

import (
	"fmt"
	"log"

	"repro"
)

const leaky = `
header local_t {
    <bit<8>, high> phys_ttl;
}
header ipv4_t {
    <bit<8>, low> ttl;
}
struct headers {
    local_t local;
    ipv4_t ipv4;
}
control Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.ipv4.ttl = hdr.local.phys_ttl; // secret -> public
    }
}
`

const fixed = `
header local_t {
    <bit<8>, high> phys_ttl;
}
header ipv4_t {
    <bit<8>, low> ttl;
}
struct headers {
    local_t local;
    ipv4_t ipv4;
}
control Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.local.phys_ttl = hdr.ipv4.ttl; // public -> secret: fine
    }
}
`

func main() {
	lat := repro.TwoPoint()

	prog, err := repro.Parse("leaky.p4", leaky)
	if err != nil {
		log.Fatal(err)
	}
	res := repro.Check(prog, lat)
	fmt.Println("leaky.p4 accepted:", res.OK)
	for _, d := range res.Diags {
		fmt.Println("  ", d)
	}

	prog, err = repro.Parse("fixed.p4", fixed)
	if err != nil {
		log.Fatal(err)
	}
	res = repro.Check(prog, lat)
	fmt.Println("fixed.p4 accepted:", res.OK)
	if !res.OK {
		log.Fatal(res.Err())
	}
}
