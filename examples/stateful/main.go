// Stateful: the paper's Section 7 future work made concrete. Switches
// keep per-flow state in registers that persist across packets; an
// adversary observing a *sequence* of packets can learn secrets that no
// single-packet analysis would reveal.
//
// The buggy program counts flows in a public register array indexed by a
// secret flow id. P4BID rejects it (T-Index: a secret index selecting
// into low-labelled storage), and the multi-packet experiment shows the
// leak is real: two packet sequences equal on all public inputs but
// differing in an earlier packet's secret produce different public
// outputs later. The fixed program keeps secret-indexed state in high
// registers and is both accepted and non-interfering across sequences.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
)

func main() {
	study, ok := repro.CaseStudyByName("Stateful")
	if !ok {
		log.Fatal("Stateful case study missing")
	}
	lat := study.Lattice()

	fmt.Println("== Buggy: public counters indexed by the secret flow id ==")
	buggy := repro.MustParse("stateful_buggy.p4", study.Source(repro.Buggy))
	res := repro.Check(buggy, lat)
	fmt.Println("accepted:", res.OK)
	for _, d := range res.Diags {
		fmt.Println("  ", d)
	}

	fmt.Println()
	fmt.Println("== Fixed: secret-indexed state lives in high registers ==")
	fixed := repro.MustParse("stateful_fixed.p4", study.Source(repro.Fixed))
	fmt.Println("accepted:", repro.Check(fixed, lat).OK)

	fmt.Println()
	fmt.Println("== Cross-packet leak, demonstrated on the interpreter ==")
	fmt.Println("Two sequences; public inputs identical; only packet 1's secret differs:")
	for _, secret := range []uint64{5, 6} {
		last := runSequence(buggy, []uint64{secret, 0}, []uint64{9, 5})
		fmt.Printf("  packet1 secret_id=%d  ->  packet2 public seen_count=%d\n", secret, last)
	}
	fmt.Println("The later packet's PUBLIC output reveals the earlier packet's SECRET.")

	fmt.Println()
	fmt.Println("== Multi-packet non-interference experiment (4 packets/trial) ==")
	for _, tc := range []struct {
		name string
		prog *repro.Program
	}{{"buggy", buggy}, {"fixed", fixed}} {
		e := &repro.NIExperiment{
			Prog: tc.prog, Lat: lat, Packets: 4,
			FixInputs: func(in map[string]eval.Value) {
				set(in["hdr"], "pkt", "secret_id", eval.NewBit(8, 5))
				set(in["hdr"], "pkt", "public_id", eval.NewBit(8, 5))
			},
		}
		vs, err := e.Run(60, 2)
		if err != nil {
			log.Fatal(err)
		}
		if len(vs) == 0 {
			fmt.Printf("%s: no witness in 60 trials\n", tc.name)
		} else {
			fmt.Printf("%s: %d witnesses, e.g. %s\n", tc.name, len(vs), vs[0])
		}
	}
}

// runSequence pushes packets through one interpreter (registers persist)
// and returns the last packet's public seen_count.
func runSequence(prog *repro.Program, secrets, publics []uint64) uint64 {
	in, err := repro.NewInterp(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	st, err := in.ParamType("Stateful_Ingress", "hdr")
	if err != nil {
		log.Fatal(err)
	}
	var last uint64
	for i := range secrets {
		hdr := eval.Zero(st.T)
		set(hdr, "pkt", "secret_id", eval.NewBit(8, secrets[i]))
		set(hdr, "pkt", "public_id", eval.NewBit(8, publics[i]))
		out, _, err := in.RunControl("", map[string]eval.Value{"hdr": hdr})
		if err != nil {
			log.Fatal(err)
		}
		last = get(out["hdr"], "pkt", "seen_count").(eval.BitVal).V
	}
	return last
}

func set(v eval.Value, hdrName, fieldName string, nv eval.Value) {
	rec := v.(*eval.RecordVal)
	for _, f := range rec.Fields {
		if f.Name == hdrName {
			h := f.Val.(*eval.HeaderVal)
			for i := range h.Fields {
				if h.Fields[i].Name == fieldName {
					h.Fields[i].Val = nv
					return
				}
			}
		}
	}
	panic("no field " + hdrName + "." + fieldName)
}

func get(v eval.Value, path ...string) eval.Value {
	for _, p := range path {
		switch vv := v.(type) {
		case *eval.RecordVal:
			for _, f := range vv.Fields {
				if f.Name == p {
					v = f.Val
					break
				}
			}
		case *eval.HeaderVal:
			for _, f := range vv.Fields {
				if f.Name == p {
					v = f.Val
					break
				}
			}
		}
	}
	return v
}
