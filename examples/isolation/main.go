// Isolation: the paper's Section 5.4 case study. Two tenants, Alice and
// Bob, program switches that share packet headers; the operator carries
// write-only telemetry alongside. Under the four-point diamond lattice of
// Figure 8b (bot ⊑ A, B ⊑ top) with Alice's control checked at pc = A and
// Bob's at pc = B, P4BID proves that neither tenant can touch the other's
// fields or read the telemetry.
//
// The example checks the paper's buggy Listing 6 (rejected, two distinct
// violations) and the repaired Listing 7 (accepted), then demonstrates the
// guarantee dynamically: an interference experiment at observer B finds a
// concrete witness against buggy Alice and none against fixed Alice.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
)

func main() {
	study, ok := repro.CaseStudyByName("Lattice")
	if !ok {
		log.Fatal("Lattice case study missing")
	}
	lat := study.Lattice()

	fmt.Println("== Buggy Listing 6 (Alice writes Bob's field, keys on telemetry) ==")
	buggy := repro.MustParse("listing6.p4", study.Source(repro.Buggy))
	res := repro.Check(buggy, lat)
	fmt.Println("accepted:", res.OK)
	for _, d := range res.Diags {
		fmt.Println("  ", d)
	}

	fmt.Println()
	fmt.Println("== Fixed Listing 7 ==")
	fixed := repro.MustParse("listing7.p4", study.Source(repro.Fixed))
	res = repro.Check(fixed, lat)
	fmt.Println("accepted:", res.OK)
	if !res.OK {
		log.Fatal(res.Err())
	}
	for name, pc := range res.ControlPC {
		fmt.Printf("   control %-14s checked at pc = %s\n", name, pc)
	}

	// Dynamic confirmation at observer B: Bob must not see anything that
	// depends on data above B (Alice's data, telemetry).
	obsB, _ := lat.Lookup("B")
	cp := repro.NewControlPlane()
	cp.DeclareTable("update_by_alice", []string{"exact"})
	cp.DeclareTable("update_by_bob", []string{"exact"})
	if err := cp.Install("update_by_alice", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(32, 21)},
		Action:   "set_by_alice", Args: []uint64{11},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("== Two-run interference experiments at observer B ==")
	for _, tc := range []struct {
		name string
		prog *repro.Program
	}{{"buggy", buggy}, {"fixed", fixed}} {
		e := &repro.NIExperiment{
			Prog: prog(tc.prog), Lat: lat, Control: "Alice_Ingress", Observer: obsB, CP: cp,
			// Steer the first run onto the installed telemetry key so the
			// buggy table hits; the second run re-randomizes the
			// (above-B) telemetry and misses, exposing the write to
			// Bob's field.
			FixInputs: func(in map[string]eval.Value) {
				hdr := in["hdr"].(*eval.RecordVal)
				for _, f := range hdr.Fields {
					if f.Name == "telem" {
						f.Val.(*eval.HeaderVal).Fields[0].Val = eval.NewBit(32, 21)
					}
				}
			},
		}
		vs, err := e.Run(200, 1)
		if err != nil {
			log.Fatal(err)
		}
		if len(vs) == 0 {
			fmt.Printf("%s Alice: no witness in 200 trials — isolation holds\n", tc.name)
		} else {
			fmt.Printf("%s Alice: %d witnesses, e.g. %s\n", tc.name, len(vs), vs[0])
		}
	}
}

func prog(p *repro.Program) *repro.Program { return p }
