// D2R: the paper's Section 5.1 case study — dataplane routing with
// failure-based priorities. The switch runs an unrolled BFS over
// pre-loaded topology tables; a variant prioritizes packets that met more
// link failures. Deriving the failure count from the secret hop count and
// branching on it inside a forwarding action writes public priorities
// under a secret guard — an indirect leak P4BID rejects.
//
// The example typechecks both variants, then routes a packet through the
// BFS tables of the fixed program to show the substrate actually runs:
// entries step curr -> next until the destination is reached, and the
// forwarding action assigns the priority from public data only.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
)

func main() {
	study, ok := repro.CaseStudyByName("D2R")
	if !ok {
		log.Fatal("D2R case study missing")
	}
	lat := study.Lattice()

	fmt.Println("== Buggy Listing 3: priority branches on the secret failure count ==")
	buggy := repro.MustParse("d2r_buggy.p4", study.Source(repro.Buggy))
	res := repro.Check(buggy, lat)
	fmt.Println("accepted:", res.OK)
	for _, d := range res.Diags {
		fmt.Println("  ", d)
	}

	fmt.Println()
	fmt.Println("== Fixed variant: priority derived from public tried-links only ==")
	fixed := repro.MustParse("d2r_fixed.p4", study.Source(repro.Fixed))
	fres := repro.Check(fixed, lat)
	fmt.Println("accepted:", fres.OK)
	if !fres.OK {
		log.Fatal(fres.Err())
	}
	fmt.Printf("   inferred pc_fn(D2R_Ingress.forwarding) = %s\n", fres.FuncPC["D2R_Ingress.forwarding"])
	fmt.Printf("   inferred pc_tbl(D2R_Ingress.forward)   = %s\n", fres.TablePC["D2R_Ingress.forward"])

	// Route a packet: BFS topology 1 -> 2 -> 3 (destination), then the
	// forward table matches next_node and runs the forwarding action.
	fmt.Println()
	fmt.Println("== Routing a packet through the BFS tables ==")
	cp := repro.NewControlPlane()
	cp.DeclareTable("bfs_step", []string{"exact", "ternary"})
	cp.DeclareTable("forward", []string{"exact"})
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// BFS steps: at node 1 go to 2; at node 2 go to 3.
	must(cp.Install("bfs_step", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(32, 1), repro.Wildcard(32)},
		Action:   "bfs_step_act", Args: []uint64{2},
	}))
	must(cp.Install("bfs_step", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(32, 2), repro.Wildcard(32)},
		Action:   "bfs_step_act", Args: []uint64{3},
	}))
	// Once curr == dstAddr (3), the apply block applies forward.
	must(cp.Install("forward", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(32, 3)},
		Action:   "forwarding",
	}))

	in, err := repro.NewInterp(fixed, cp)
	if err != nil {
		log.Fatal(err)
	}
	st, err := in.ParamType("D2R_Ingress", "hdr")
	if err != nil {
		log.Fatal(err)
	}
	hdr := eval.Zero(st.T).(*eval.RecordVal)
	set(hdr, "bfs", "curr", eval.NewBit(32, 1))
	set(hdr, "bfs", "next_node", eval.NewBit(32, 3))
	set(hdr, "ipv4", "dstAddr", eval.NewBit(32, 3))
	out, sig, err := in.RunControl("", map[string]eval.Value{"hdr": hdr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("signal:", sig)
	fmt.Println("bfs.curr       =", get(out["hdr"], "bfs", "curr"), "(reached destination 3)")
	fmt.Println("bfs.tried_links=", get(out["hdr"], "bfs", "tried_links"))
	fmt.Println("ipv4.priority  =", get(out["hdr"], "ipv4", "priority"), "(set from public data)")
	fmt.Println("egress_spec    =", get(out["standard_metadata"], "egress_spec"))
}

func set(v eval.Value, hdrName, fieldName string, nv eval.Value) {
	rec := v.(*eval.RecordVal)
	for _, f := range rec.Fields {
		if f.Name == hdrName {
			h := f.Val.(*eval.HeaderVal)
			for i := range h.Fields {
				if h.Fields[i].Name == fieldName {
					h.Fields[i].Val = nv
					return
				}
			}
		}
	}
	panic("no field " + hdrName + "." + fieldName)
}

func get(v eval.Value, path ...string) eval.Value {
	for _, p := range path {
		switch vv := v.(type) {
		case *eval.RecordVal:
			for _, f := range vv.Fields {
				if f.Name == p {
					v = f.Val
					break
				}
			}
		case *eval.HeaderVal:
			for _, f := range vv.Fields {
				if f.Name == p {
					v = f.Val
					break
				}
			}
		}
	}
	return v
}
