// Cache timing: the paper's Section 5.2 case study. An in-network
// key-value cache answers hot queries on the switch; whether a query hit
// the cache is visible to a timing adversary. Keying the cache table on a
// secret query therefore leaks.
//
// The example shows the static rejection (the table declaration violates
// T-TblDecl: a high key selecting low-writing actions), then makes the
// side channel concrete: two runs differing only in the secret query
// produce different public hit bits.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
)

func main() {
	study, ok := repro.CaseStudyByName("Cache")
	if !ok {
		log.Fatal("Cache case study missing")
	}
	lat := study.Lattice()

	fmt.Println("== Buggy Listing 4: secret query keys a table that writes the public hit bit ==")
	buggy := repro.MustParse("cache_buggy.p4", study.Source(repro.Buggy))
	res := repro.Check(buggy, lat)
	fmt.Println("accepted:", res.OK)
	for _, d := range res.Diags {
		fmt.Println("  ", d)
	}

	fmt.Println()
	fmt.Println("== Fixed variant: the response fields are high ==")
	fixed := repro.MustParse("cache_fixed.p4", study.Source(repro.Fixed))
	fmt.Println("accepted:", repro.Check(fixed, lat).OK)

	// Demonstrate the channel on the interpreter: install one cached key
	// and observe the public hit bit for a hitting and a missing query.
	fmt.Println()
	fmt.Println("== Dynamic demonstration of the timing channel ==")
	cp := repro.NewControlPlane()
	cp.DeclareTable("fetch_from_cache", []string{"exact"})
	if err := cp.Install("fetch_from_cache", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(8, 42)},
		Action:   "cache_hit", Args: []uint64{777},
	}); err != nil {
		log.Fatal(err)
	}
	for _, query := range []uint64{42, 43} {
		in, err := repro.NewInterp(buggy, cp.Clone())
		if err != nil {
			log.Fatal(err)
		}
		st, err := in.ParamType("Cache_Ingress", "hdr")
		if err != nil {
			log.Fatal(err)
		}
		hdr := eval.Zero(st.T).(*eval.RecordVal)
		for _, f := range hdr.Fields {
			if f.Name == "req" {
				req := f.Val.(*eval.HeaderVal)
				req.Fields[0].Val = eval.NewBit(8, query)
			}
		}
		out, _, err := in.RunControl("", map[string]eval.Value{"hdr": hdr})
		if err != nil {
			log.Fatal(err)
		}
		resp := fieldOf(out["hdr"], "resp").(*eval.HeaderVal)
		fmt.Printf("secret query %d -> public hit bit %s (timing observable)\n",
			query, fieldOfHeader(resp, "hit"))
	}
	fmt.Println("The two secret queries produce distinguishable public outputs:")
	fmt.Println("exactly the interference the type system rejects.")
}

func fieldOf(v eval.Value, name string) eval.Value {
	rec := v.(*eval.RecordVal)
	for _, f := range rec.Fields {
		if f.Name == name {
			return f.Val
		}
	}
	panic("no field " + name)
}

func fieldOfHeader(h *eval.HeaderVal, name string) eval.Value {
	for _, f := range h.Fields {
		if f.Name == name {
			return f.Val
		}
	}
	panic("no field " + name)
}
