// Tests for the Session + Corpus public API: configuration validation,
// equivalence with the deprecated standalone wrappers, and the event
// stream.
package repro_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
)

func smallSessionGen() repro.GenConfig {
	return gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true}
}

// TestSessionValidation: misconfiguration fails at NewSession, not
// mid-campaign.
func TestSessionValidation(t *testing.T) {
	cases := [][]repro.SessionOption{
		{repro.WithLattice("chain:x")},
		{repro.WithShard(3, 2)},
		{repro.WithShard(-1, 4)},
		{repro.WithResume()}, // no corpus
	}
	for i, opts := range cases {
		if _, err := repro.NewSession(opts...); err == nil {
			t.Errorf("case %d: invalid session built without error", i)
		}
	}
	s, err := repro.NewSession(
		repro.WithLattice("product:two-point,two-point"),
		repro.WithCorpus(t.TempDir()),
		repro.WithResume(),
	)
	if err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
	s.Close()

	// Corpus-reading operations on a corpus-less session report the
	// misconfiguration instead of silently scanning the working directory.
	bare, err := repro.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Replay(context.Background()); err == nil {
		t.Error("Replay without WithCorpus did not error")
	}
	if _, err := bare.Triage(); err == nil {
		t.Error("Triage without WithCorpus did not error")
	}
	if _, err := bare.Retire(context.Background()); err == nil {
		t.Error("Retire without WithCorpus did not error")
	}
	if _, err := bare.Corpus(); err == nil {
		t.Error("Corpus without WithCorpus did not error")
	}
}

// TestSessionLatticeKeepsGenDefaults: WithLattice alone overrides only
// the lattice — the generator keeps its default shape (actions included),
// exactly like `p4fuzz run -lattice chain:4`.
func TestSessionLatticeKeepsGenDefaults(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithCorpus(t.TempDir()),
		repro.WithLattice("chain:4"),
		repro.WithNIBudget(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Campaign(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	def := gen.DefaultConfig()
	def.Lattice = "chain:4"
	if rep.Gen != def {
		t.Fatalf("WithLattice-only session ran gen config %+v, want default shape with chain:4 (%+v)", rep.Gen, def)
	}
	if !rep.Gen.WithActions {
		t.Fatal("WithLattice zeroed WithActions — action coverage silently lost")
	}
}

// TestSessionCampaignEquivalentToDeprecatedWrapper: the Session method
// and the deprecated standalone function run the same engine — identical
// analysis counts, findings, and corpus contents for identical inputs.
func TestSessionCampaignEquivalentToDeprecatedWrapper(t *testing.T) {
	dirOld, dirNew := t.TempDir(), t.TempDir()
	repOld, err := repro.Campaign(context.Background(), repro.CampaignConfig{
		N: 60, Seed: 17, Gen: smallSessionGen(), NITrials: 2, CorpusDir: dirOld, Minimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(
		repro.WithCorpus(dirNew),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(17),
		repro.WithNIBudget(2, 0),
		repro.WithMinimize(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	repNew, err := s.Campaign(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if repOld.Analyzed != repNew.Analyzed || repOld.Counts != repNew.Counts ||
		repOld.NewFindings != repNew.NewFindings || repOld.TrialsRun != repNew.TrialsRun {
		t.Fatalf("wrapper and session disagree: %+v vs %+v", repOld, repNew)
	}
	keysOf := func(r *repro.CampaignReport) []string {
		var out []string
		for _, f := range r.Findings {
			out = append(out, f.Key)
		}
		return out
	}
	oldKeys, newKeys := keysOf(repOld), keysOf(repNew)
	if strings.Join(oldKeys, ",") != strings.Join(newKeys, ",") {
		t.Fatalf("finding keys differ:\n%v\n%v", oldKeys, newKeys)
	}
	// Corpus contents match file for file (paths aside).
	lsNames := func(dir string) string {
		ents, err := os.ReadDir(filepath.Join(dir, "findings"))
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		return strings.Join(names, ",")
	}
	if lsNames(dirOld) != lsNames(dirNew) {
		t.Fatalf("corpus contents differ:\n%s\n%s", lsNames(dirOld), lsNames(dirNew))
	}
}

// TestSessionEvents: a campaign streams job-done events (one per
// analyzed program), finding events (one per new finding), and progress
// ticks ending at done == total; Close closes the channel.
func TestSessionEvents(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithCorpus(t.TempDir()),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(5),
		repro.WithNIBudget(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	collected := make(chan []repro.Event, 1)
	go func() {
		var evs []repro.Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		collected <- evs
	}()
	rep, err := s.Campaign(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	evs := <-collected
	if s.Dropped() != 0 {
		t.Fatalf("%d events dropped with a live consumer and a 1024 buffer", s.Dropped())
	}
	counts := map[repro.EventKind]int{}
	var lastProgress repro.Event
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Kind == repro.EventProgress {
			lastProgress = ev
		}
		if ev.Op != "campaign" {
			t.Errorf("event op %q, want campaign", ev.Op)
		}
		if ev.Time.IsZero() {
			t.Error("event missing timestamp")
		}
	}
	if counts[repro.EventJobDone] != rep.Analyzed {
		t.Errorf("%d job-done events, want %d (one per analyzed program)", counts[repro.EventJobDone], rep.Analyzed)
	}
	if counts[repro.EventFinding] != rep.NewFindings {
		t.Errorf("%d finding events, want %d", counts[repro.EventFinding], rep.NewFindings)
	}
	if counts[repro.EventProgress] == 0 || lastProgress.Done != rep.Analyzed || lastProgress.Total != rep.Analyzed {
		t.Errorf("progress ticks broken: %d ticks, last %d/%d, want final %d/%d",
			counts[repro.EventProgress], lastProgress.Done, lastProgress.Total, rep.Analyzed, rep.Analyzed)
	}
	// The channel is closed: a fresh receive completes immediately.
	if _, ok := <-ch; ok {
		t.Error("event channel still open after Close")
	}
}

// TestSessionCloseDuringOperation: closing the session from the event
// listener while a campaign is still running discards the remaining
// events instead of panicking on the closed channel; the campaign itself
// completes normally.
func TestSessionCloseDuringOperation(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithCorpus(t.TempDir()),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithNIBudget(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	drained := make(chan int, 1)
	go func() {
		n := 0
		for range ch {
			n++
			if n == 3 {
				s.Close() // mid-operation: must not panic the engine
			}
		}
		drained <- n
	}()
	rep, err := s.Campaign(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analyzed != 60 {
		t.Errorf("campaign analyzed %d after mid-run Close, want 60", rep.Analyzed)
	}
	if n := <-drained; n < 3 {
		t.Errorf("listener drained %d events before close", n)
	}
}

// TestSessionReplayDriftEvents: replay emits one job-done per finding and
// a drift event per mismatch; the session's corpus handle sees the same
// totals.
func TestSessionReplayDriftEvents(t *testing.T) {
	dir := t.TempDir()
	seed, err := repro.Campaign(context.Background(), repro.CampaignConfig{
		N: 80, Seed: 23, Gen: smallSessionGen(), NITrials: 1, CorpusDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seed.NewFindings == 0 {
		t.Skip("campaign found nothing to replay")
	}
	// Tamper one finding's recorded class so replay must drift.
	ents, err := os.ReadDir(filepath.Join(dir, "findings"))
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".json") || !strings.HasPrefix(e.Name(), "rejected-clean-") {
			continue
		}
		path := filepath.Join(dir, "findings", e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		m["class"] = "sound"
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		tampered = true
		break
	}
	if !tampered {
		t.Skip("no rejected-clean finding to tamper with")
	}

	s, err := repro.NewSession(repro.WithCorpus(dir), repro.WithNIBudget(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	collected := make(chan []repro.Event, 1)
	go func() {
		var evs []repro.Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		collected <- evs
	}()
	rep, err := s.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	evs := <-collected
	if rep.OK() || len(rep.Drifts) == 0 {
		t.Fatalf("tampered corpus replayed clean: %+v", rep)
	}
	counts := map[repro.EventKind]int{}
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Op != "replay" {
			t.Errorf("event op %q, want replay", ev.Op)
		}
	}
	if counts[repro.EventDrift] != len(rep.Drifts) {
		t.Errorf("%d drift events, want %d", counts[repro.EventDrift], len(rep.Drifts))
	}
	if counts[repro.EventJobDone] != rep.Total {
		t.Errorf("%d job-done events, want %d replayed findings", counts[repro.EventJobDone], rep.Total)
	}
}

// TestSessionTriageClusterEvents: triage emits one cluster event per
// ranked cluster over the checked-in regression corpus.
func TestSessionTriageClusterEvents(t *testing.T) {
	s, err := repro.NewSession(repro.WithCorpus("testdata/regression-corpus"))
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	collected := make(chan []repro.Event, 1)
	go func() {
		var evs []repro.Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		collected <- evs
	}()
	rep, err := s.Triage()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	evs := <-collected
	if !rep.OK() || len(rep.Clusters) == 0 {
		t.Fatalf("regression corpus triage: %+v", rep.Errors)
	}
	clusterEvents := 0
	for _, ev := range evs {
		if ev.Kind == repro.EventCluster {
			clusterEvents++
			if ev.Class == "" || ev.Detail == "" {
				t.Errorf("cluster event missing class/fingerprint: %+v", ev)
			}
		}
	}
	if clusterEvents != len(rep.Clusters) {
		t.Errorf("%d cluster events, want %d", clusterEvents, len(rep.Clusters))
	}
}

// TestSessionCorpusHandle: the session's corpus view agrees with the
// public OpenCorpus over the regression corpus, and filters work through
// the re-exported types.
func TestSessionCorpusHandle(t *testing.T) {
	s, err := repro.NewSession(repro.WithCorpus("testdata/regression-corpus"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := repro.OpenCorpus("testdata/regression-corpus")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != direct.Len() || c.Len() < 15 {
		t.Fatalf("session corpus %d entries, direct %d, want >= 15", c.Len(), direct.Len())
	}
	st := c.Stats()
	if st.Total != c.Len() || st.Errors != 0 {
		t.Fatalf("regression corpus stats: %+v", st)
	}
	sum := 0
	for class, n := range st.ByClass {
		filtered := 0
		for range c.Select(repro.CorpusFilter{Class: class}) {
			filtered++
		}
		if filtered != n {
			t.Errorf("class %s: filter found %d, stats say %d", class, filtered, n)
		}
		sum += n
	}
	if sum != st.Total {
		t.Errorf("class counts sum to %d, total %d", sum, st.Total)
	}
}

// TestSessionProductLatticeCampaign: product lattices run end-to-end
// through the Session — the ROADMAP item that product element names
// didn't lex as labels.
func TestSessionProductLatticeCampaign(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithGenConfig(gen.Config{MaxDepth: 2, MaxStmts: 3, NumFields: 2, WithActions: true, Lattice: "product:two-point,two-point"}),
		repro.WithCorpus(t.TempDir()),
		repro.WithSeed(3),
		repro.WithNIBudget(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Campaign(context.Background(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analyzed != 30 {
		t.Fatalf("analyzed %d, want 30", rep.Analyzed)
	}
	if rep.Counts[0] == 0 { // difftest.Sound == 0: some programs must be accepted and NI-clean
		t.Errorf("no sound programs under the product lattice: %+v", rep.Counts)
	}
}

// TestSessionOpFraming: every operation's stream opens with op-start and
// closes with op-end, and the op-end detail summarizes the outcome — the
// contract that lets a fleet coordinator distinguish a complete worker
// stream from one cut short by a crash.
func TestSessionOpFraming(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithCorpus(t.TempDir()),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(5),
		repro.WithNIBudget(1, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	collected := make(chan []repro.Event, 1)
	go func() {
		var evs []repro.Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		collected <- evs
	}()
	if _, err := s.Campaign(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DiffFuzz(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	s.Close()
	evs := <-collected

	var frames []repro.Event
	for _, ev := range evs {
		if ev.Kind == repro.EventOpStart || ev.Kind == repro.EventOpEnd {
			frames = append(frames, ev)
		}
	}
	wantOps := []string{"campaign", "campaign", "replay", "replay", "fuzz", "fuzz"}
	if len(frames) != len(wantOps) {
		t.Fatalf("got %d framing events, want %d: %+v", len(frames), len(wantOps), frames)
	}
	for i, f := range frames {
		if f.Op != wantOps[i] {
			t.Errorf("frame %d op %q, want %q", i, f.Op, wantOps[i])
		}
		wantKind := repro.EventOpStart
		if i%2 == 1 {
			wantKind = repro.EventOpEnd
		}
		if f.Kind != wantKind {
			t.Errorf("frame %d kind %v, want %v", i, f.Kind, wantKind)
		}
		if f.Kind == repro.EventOpEnd && f.Detail == "" {
			t.Errorf("frame %d (op-end %s) has no outcome detail", i, f.Op)
		}
	}
	// Framing must wrap the payload: the first event of the whole stream
	// is op-start, the last op-end.
	if evs[0].Kind != repro.EventOpStart || evs[len(evs)-1].Kind != repro.EventOpEnd {
		t.Errorf("stream not framed: first %v, last %v", evs[0].Kind, evs[len(evs)-1].Kind)
	}
}

// TestSessionDropWarning: a consumer too slow for the buffer loses
// events, and the operation's final framing says so — a guaranteed
// KindWarning with the drop count before op-end, delivered even though
// the buffer is full.
func TestSessionDropWarning(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(5),
		repro.WithNIBudget(1, 0),
		repro.WithEventBuffer(2), // force drops: a campaign emits far more
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Events()
	if _, err := s.Campaign(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	s.Close()
	var evs []repro.Event
	for ev := range ch {
		evs = append(evs, ev)
	}
	if s.Dropped() == 0 {
		t.Fatal("no events dropped with a 2-slot buffer and no consumer; the test premise is broken")
	}
	// The stream must end op-end, preceded by the drop warning.
	if len(evs) < 2 {
		t.Fatalf("only %d events survived", len(evs))
	}
	last, warn := evs[len(evs)-1], evs[len(evs)-2]
	if last.Kind != repro.EventOpEnd {
		t.Errorf("stream does not end with op-end: %+v", last)
	}
	if warn.Kind != repro.EventWarning || warn.Done == 0 || !strings.Contains(warn.Detail, "dropped") {
		t.Errorf("no drop-count warning before op-end: %+v", warn)
	}
}

// TestSessionCheckMethodsMatchWrappers: Session.CheckAll and
// Session.DiffFuzz produce the same summaries as the deprecated
// standalone wrappers, and CheckStream delivers every result with
// job-done events.
func TestSessionCheckMethodsMatchWrappers(t *testing.T) {
	s, err := repro.NewSession(
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(11),
		repro.WithNIBudget(2, 4),
		repro.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// DiffFuzz: same verdict counts as the wrapper.
	sRep, err := s.DiffFuzz(context.Background(), 30)
	if err != nil {
		t.Fatal(err)
	}
	wRep, err := repro.DiffFuzz(context.Background(), repro.FuzzConfig{
		N: 30, Seed: 11, Gen: smallSessionGen(), NITrials: 2, NITrialsMax: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sRep.Counts != wRep.Counts {
		t.Errorf("Session.DiffFuzz counts %v != wrapper %v", sRep.Counts, wRep.Counts)
	}

	// CheckAll: same per-job outcomes as the wrapper.
	var jobs []repro.BatchJob
	for i, cs := range repro.CaseStudies() {
		jobs = append(jobs, repro.BatchJob{Name: cs.FileName(repro.Buggy), Source: cs.Source(repro.Buggy), Lat: cs.Lattice(), Seq: int64(i)})
	}
	sSum, err := s.CheckAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	wSum, err := repro.CheckAll(context.Background(), jobs, repro.BatchOptions{
		Workers: 2, NI: repro.NIAll, NITrials: 2, NITrialsMax: 4, NISeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sSum.Results) != len(wSum.Results) {
		t.Fatalf("Session.CheckAll %d results, wrapper %d", len(sSum.Results), len(wSum.Results))
	}
	for i := range sSum.Results {
		if sSum.Results[i].IFCOK() != wSum.Results[i].IFCOK() {
			t.Errorf("job %d: session IFC %v, wrapper %v", i, sSum.Results[i].IFCOK(), wSum.Results[i].IFCOK())
		}
	}

	// CheckStream: all jobs come back, framed with job-done events.
	ch := s.Events()
	go func() {
		for range ch {
		}
	}()
	in := make(chan repro.BatchJob)
	go func() {
		defer close(in)
		for _, j := range jobs {
			in <- j
		}
	}()
	n := 0
	for range s.CheckStream(context.Background(), in) {
		n++
	}
	if n != len(jobs) {
		t.Errorf("CheckStream delivered %d results, want %d", n, len(jobs))
	}
}
