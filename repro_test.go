package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestPublicAPIEndToEnd drives the whole public surface: parse, IFC-check,
// base-check, install entries, interpret, and run an NI experiment.
func TestPublicAPIEndToEnd(t *testing.T) {
	study, ok := repro.CaseStudyByName("Cache")
	if !ok {
		t.Fatal("Cache case study missing")
	}
	lat := study.Lattice()

	buggy, err := repro.Parse("cache.p4", study.Source(repro.Buggy))
	if err != nil {
		t.Fatal(err)
	}
	res := repro.Check(buggy, lat)
	if res.OK {
		t.Fatal("buggy cache accepted")
	}
	if !strings.Contains(res.Err().Error(), "T-TblDecl") {
		t.Errorf("rejection does not cite T-TblDecl: %v", res.Err())
	}
	if base := repro.CheckBase(buggy); !base.OK {
		t.Fatalf("buggy cache fails BASE typing: %v", base.Err())
	}

	fixed := repro.MustParse("cache_fixed.p4", study.Source(repro.Fixed))
	fres := repro.Check(fixed, lat)
	if !fres.OK {
		t.Fatal(fres.Err())
	}
	if pc, ok := fres.TablePC["Cache_Ingress.fetch_from_cache"]; !ok || pc.Name() != "high" {
		t.Errorf("pc_tbl(fetch_from_cache) = %v, want high", pc)
	}

	cp := repro.NewControlPlane()
	cp.DeclareTable("fetch_from_cache", []string{"exact"})
	if err := cp.Install("fetch_from_cache", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(8, 1)},
		Action:   "cache_hit", Args: []uint64{5},
	}); err != nil {
		t.Fatal(err)
	}
	in, err := repro.NewInterp(fixed, cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, sig, err := in.RunControl("", nil); err != nil || sig.Kind != 0 {
		t.Fatalf("run: sig=%v err=%v", sig, err)
	}

	e := &repro.NIExperiment{Prog: fixed, Lat: lat, CP: cp}
	vs, err := e.Run(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("NI violation on fixed cache: %v", vs[0])
	}
}

func TestLatticeConstructors(t *testing.T) {
	if repro.TwoPoint().Name() != "two-point" {
		t.Error("TwoPoint")
	}
	if repro.Diamond().Name() != "diamond" {
		t.Error("Diamond")
	}
	if len(repro.NParty("X", "Y", "Z").Elements()) != 5 {
		t.Error("NParty")
	}
	if _, err := repro.LatticeByName("chain-4"); err != nil {
		t.Error(err)
	}
	if _, err := repro.LatticeByName("garbage"); err == nil {
		t.Error("garbage lattice resolved")
	}
	if lat, err := repro.LatticeByName("powerset:2"); err != nil || len(lat.Elements()) != 4 {
		t.Errorf("powerset:2 = %v, %v", lat, err)
	}
	if repro.Powerset("a", "b").Top().Name() != "p_a_b" {
		t.Error("Powerset label spelling")
	}
}

func TestCaseStudiesComplete(t *testing.T) {
	cs := repro.CaseStudies()
	if len(cs) != 7 {
		t.Fatalf("case studies = %d", len(cs))
	}
	if cs[0].Name != "D2R" {
		t.Errorf("first case study = %s (want Table 1 order)", cs[0].Name)
	}
}

func TestStripAnnotationsFacade(t *testing.T) {
	out := repro.StripAnnotations("<bit<8>, high> x;")
	if out != "bit<8> x;" {
		t.Errorf("strip = %q", out)
	}
}
