// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// pair per Table 1 row (baseline vs P4BID on the same program), plus the
// scaling sweeps and ablations described in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// and compare against EXPERIMENTS.md.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/ni"
	"repro/internal/progs"
)

// benchCheck parses+checks src with the IFC checker once per iteration.
func benchCheck(b *testing.B, lat repro.Lattice, file, src string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := repro.Parse(file, src)
		if err != nil {
			b.Fatal(err)
		}
		if res := repro.Check(prog, lat); !res.OK {
			b.Fatal(res.Err())
		}
	}
}

func benchBaseCheck(b *testing.B, file, src string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := repro.Parse(file, src)
		if err != nil {
			b.Fatal(err)
		}
		if res := repro.CheckBase(prog); !res.OK {
			b.Fatal(res.Err())
		}
	}
}

// BenchmarkTable1 has one sub-benchmark pair per Table 1 row: the
// unannotated program through the baseline checker ("Unannotated") and the
// annotated secure program through P4BID ("Annotated"). The paper reports
// an average overhead of about 5%.
func BenchmarkTable1(b *testing.B) {
	for _, p := range repro.CaseStudies() {
		if p.Name == "NetChain" || p.Name == "Stateful" {
			continue // not a Table 1 row
		}
		p := p
		b.Run(p.Name+"/Unannotated", func(b *testing.B) {
			benchBaseCheck(b, p.FileName(repro.Unannotated), p.Source(repro.Unannotated))
		})
		b.Run(p.Name+"/Annotated", func(b *testing.B) {
			benchCheck(b, p.Lattice(), p.FileName(repro.Fixed), p.Source(repro.Fixed))
		})
	}
}

// BenchmarkTable1Report prints the assembled Table 1 once, in the paper's
// format, so `go test -bench Table1Report` regenerates the artifact.
func BenchmarkTable1Report(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(25)
		if i == 0 {
			b.Log("\n" + bench.FormatTable1(rows))
		}
	}
}

// BenchmarkScalingBySize extends Table 1 with synthetic programs of
// growing size (tables × actions); both checkers should scale linearly
// with a small constant gap.
func BenchmarkScalingBySize(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		src := gen.Synth(n, 4, 8)
		stripped := progs.StripAnnotations(src)
		b.Run(fmt.Sprintf("tables=%d/Base", n), func(b *testing.B) {
			benchBaseCheck(b, "synth.p4", stripped)
		})
		b.Run(fmt.Sprintf("tables=%d/P4BID", n), func(b *testing.B) {
			benchCheck(b, repro.TwoPoint(), "synth.p4", src)
		})
	}
}

// BenchmarkScalingByLattice measures checker time as the lattice grows
// (chains of height h); lattice operations are table lookups, so the cost
// should stay near-flat.
func BenchmarkScalingByLattice(b *testing.B) {
	for _, h := range []int{2, 8, 32} {
		src := gen.SynthChainLabels(h)
		lat := lattice.Chain(h)
		b.Run(fmt.Sprintf("height=%d", h), func(b *testing.B) {
			benchCheck(b, lat, "chain.p4", src)
		})
	}
}

// BenchmarkEffectInference isolates the write-effect (pc_fn) inference
// ablation of DESIGN.md: a program that is all function declarations
// stresses the inference, one that is all apply-block statements does not.
func BenchmarkEffectInference(b *testing.B) {
	manyActions := gen.Synth(16, 8, 8) // 128 actions to infer pc_fn for
	flat := gen.SynthChainLabels(2)
	b.Run("many-actions", func(b *testing.B) {
		benchCheck(b, repro.TwoPoint(), "acts.p4", manyActions)
	})
	b.Run("flat-apply", func(b *testing.B) {
		benchCheck(b, lattice.Chain(2), "flat.p4", flat)
	})
}

// BenchmarkParseOnly separates frontend cost from checking cost.
func BenchmarkParseOnly(b *testing.B) {
	p, _ := repro.CaseStudyByName("D2R")
	src := p.Source(repro.Fixed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Parse("d2r.p4", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatticeOps measures raw lattice operation cost across stock
// lattices.
func BenchmarkLatticeOps(b *testing.B) {
	for _, tc := range []struct {
		name string
		lat  repro.Lattice
	}{
		{"two-point", lattice.TwoPoint()},
		{"diamond", lattice.Diamond()},
		{"powerset-6", lattice.Powerset("a", "b", "c", "d", "e", "f")},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			es := tc.lat.Elements()
			for i := 0; i < b.N; i++ {
				x := es[i%len(es)]
				y := es[(i*7+3)%len(es)]
				_ = tc.lat.Join(x, y)
				_ = tc.lat.Meet(x, y)
				_ = tc.lat.Leq(x, y)
			}
		})
	}
}

// BenchmarkInterpreter measures packet-processing throughput of the
// evaluator on the fixed Cache program with a hitting entry.
func BenchmarkInterpreter(b *testing.B) {
	p, _ := repro.CaseStudyByName("Cache")
	prog := repro.MustParse("cache.p4", p.Source(repro.Fixed))
	cp := repro.NewControlPlane()
	cp.DeclareTable("fetch_from_cache", []string{"exact"})
	if err := cp.Install("fetch_from_cache", repro.Entry{
		Patterns: []repro.Pattern{repro.Exact(8, 42)},
		Action:   "cache_hit", Args: []uint64{7},
	}); err != nil {
		b.Fatal(err)
	}
	in, err := repro.NewInterp(prog, cp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.RunControl("", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNITrial measures the cost of one randomized non-interference
// trial on the fixed NetChain program.
func BenchmarkNITrial(b *testing.B) {
	p, _ := repro.CaseStudyByName("NetChain")
	prog := repro.MustParse("netchain.p4", p.Source(repro.Fixed))
	e := &ni.Experiment{Prog: prog, Lat: p.Lattice()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomProgramGeneration measures the fuzzing generator.
func BenchmarkRandomProgramGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := gen.DefaultConfig()
	for i := 0; i < b.N; i++ {
		_ = gen.Random(rng, cfg)
	}
}

// BenchmarkPipeline measures batch-analysis throughput over a 200-program
// generated corpus: the sequential path (workers=1) against the full
// worker pool. On >= 4 cores the pool should win by >= 3x; compare the
// two sub-benchmarks' ns/op (see also `p4bench -pipeline`).
func BenchmarkPipeline(b *testing.B) {
	jobs := bench.PipelineCorpus(200, 1)
	run := func(b *testing.B, workers int) {
		b.ReportMetric(float64(len(jobs)), "programs/batch")
		for i := 0; i < b.N; i++ {
			sum, err := repro.CheckAll(context.Background(), jobs, repro.BatchOptions{
				Workers: workers,
				NI:      repro.NIAccepted,
				NISeed:  1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Parsed != len(jobs) {
				b.Fatalf("only %d/%d programs parsed", sum.Parsed, len(jobs))
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkDiffFuzz measures the differential fuzzing harness end to end
// (generation + all stages + NI on every base-accepted program).
func BenchmarkDiffFuzz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := repro.DiffFuzz(context.Background(), repro.FuzzConfig{
			N: 100, Seed: 1, NITrials: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("fuzzing found defects:\n%s", repro.FormatFuzzReport(rep))
		}
	}
}
