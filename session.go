// Session: the first-class handle over the campaign stack. One configured
// object — lattice, corpus, NI budgets, worker count, set once through
// functional options — whose methods run every corpus-centric operation
// (Campaign, Replay, Triage, Retire, Minimize) against the same
// configuration, with a structured event stream for live progress.
//
// Before the Session existed each operation took its own XxxConfig struct
// repeating the same fields; those standalone functions remain as
// deprecated one-line wrappers (see repro.go), and a Session method with
// the equivalent options produces byte-identical reports.
package repro

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/events"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/shrink"
	"repro/internal/triage"
)

// Event is one observation from a running Session operation: a job
// completing, a finding persisting, replay drift, a triage cluster, a
// retirement, or a coarse progress tick. See EventKind for the vocabulary.
type Event = events.Event

// EventKind discriminates events.
type EventKind = events.Kind

// Event kinds, in the order an operation tends to emit them.
const (
	EventJobDone  = events.KindJobDone
	EventFinding  = events.KindFinding
	EventDrift    = events.KindDrift
	EventCluster  = events.KindCluster
	EventRetired  = events.KindRetired
	EventProgress = events.KindProgress
	// EventWarning is a recoverable anomaly an operation worked around —
	// e.g. a corrupt corpus index rebuilt from a directory rescan, or
	// events dropped by a slow listener (Done carries the drop count,
	// emitted just before EventOpEnd).
	EventWarning = events.KindWarning
	// EventOpStart and EventOpEnd frame every Session operation's stream:
	// a consumer that saw EventOpStart but no EventOpEnd knows the stream
	// was cut short. Both ride a guaranteed path that displaces older
	// buffered events instead of being dropped.
	EventOpStart = events.KindOpStart
	EventOpEnd   = events.KindOpEnd
	// Fleet lifecycle kinds (emitted by internal/fleet coordinators):
	// a window leased, an expired lease reclaimed, a window completed,
	// and a worker finding merged into the main corpus.
	EventLease      = events.KindLease
	EventReclaim    = events.KindReclaim
	EventWindowDone = events.KindWindowDone
	EventMerge      = events.KindMerge
	// EventMetrics is a periodic telemetry snapshot; Event.Snapshot
	// carries the emitting process's metrics registry.
	EventMetrics = events.KindMetrics
)

// MetricsSnapshot is a point-in-time copy of a session's (or fleet
// process's) metrics registry: sorted counter/gauge/histogram samples that
// marshal to stable JSON (the metrics.json schema) and render to the
// Prometheus text exposition via WriteExposition.
type MetricsSnapshot = metrics.Snapshot

// Corpus is a cached, validated handle over an on-disk finding corpus:
// iter.Seq2-based iteration (Entries), filtered queries (Select), Stats,
// and single-parse-per-entry caching of programs and shape fingerprints.
// Every campaign-stack operation (Replay, Triage, Retire, the campaign
// seed pool) opens one such handle and serves all its reads through the
// cache instead of re-walking the directory per consumer.
type Corpus = corpus.Corpus

// CorpusEntry is one cached finding pair; CorpusFilter selects entries by
// class, cited rule, origin, or campaign lattice; CorpusStats summarizes
// a corpus.
type (
	CorpusEntry  = corpus.Entry
	CorpusFilter = corpus.Filter
	CorpusStats  = corpus.Stats
)

// CorpusMeta is the verdict metadata persisted next to each finding.
type CorpusMeta = corpus.Meta

// OpenCorpus opens dir as a finding corpus, reading and caching every
// entry. A missing findings directory is an empty corpus; corrupt entries
// are kept in the iteration with their load errors, so callers decide
// whether they are fatal.
func OpenCorpus(dir string) (*Corpus, error) { return corpus.Open(dir) }

// GenConfig configures the random-program generator (see internal/gen);
// the zero value means gen.DefaultConfig.
type GenConfig = gen.Config

// Session is one configured handle over the campaign stack. Configure it
// once with NewSession's options, then run operations; all of them share
// the lattice, NI budgets, and worker pool, report through the same event
// stream (Events), and read and write the corpus through one shared
// handle (Corpus) — the directory is opened exactly once per session, no
// matter how many operations run.
//
// Operations are safe to run one at a time; a Session does not serialize
// concurrent method calls (two campaigns over one corpus directory would
// race on the corpus regardless of process structure). Close the session
// after the last operation returns to release the event channel.
type Session struct {
	gcfg        gen.Config
	latSpec     string
	seed        int64
	trials      int
	trialsMax   int
	workers     int
	corpusDir   string
	promoteDir  string
	mutate      bool
	mutateFrac  float64
	minimize    bool
	shard       int
	numShards   int
	resume      bool
	maxPerClass int
	maxNovelty  int
	log         io.Writer

	// niOracle selects the NI backend every operation checks programs
	// with ("" = the adaptive default); exhaustBudget and exhaustProbes
	// configure the exhaustive oracle's enumeration.
	niOracle      string
	exhaustBudget uint64
	exhaustProbes int

	eventBuf int
	mu       sync.Mutex
	events   chan Event
	closed   bool
	dropped  atomic.Int64

	// metrics is the session's registry, threaded through every operation:
	// campaigns, their pipelines, and NI experiments all record into it,
	// so counts accumulate across the session's operations. Snapshots are
	// exposed live via Metrics() and persisted as <corpus>/metrics.json at
	// every op-end.
	metrics *metrics.Registry

	// corp is the session's one corpus handle, opened lazily by Corpus()
	// and threaded through every operation: Campaign, Replay, Triage,
	// Retire, and Compact all read through its metadata index and its
	// source/parse/fingerprint caches, and the write-side operations keep
	// it coherent in place. The directory is never re-opened mid-session.
	corp *Corpus
}

// SessionOption configures a Session under construction.
type SessionOption func(*Session)

// WithCorpus sets the persistent corpus directory every operation reads
// and writes. Without it, Campaign keeps findings in memory only and the
// corpus-reading operations (Replay, Triage, Retire) have nothing to
// open — NewSession accepts that, the methods report it.
func WithCorpus(dir string) SessionOption { return func(s *Session) { s.corpusDir = dir } }

// WithLattice sets the campaign lattice spec ("two-point", "diamond",
// "chain:N", "nparty:N", "powerset:N", "product:a,b"); generated programs
// are annotated against it and checked under it. The generator's shape
// knobs keep their defaults (or whatever WithGenConfig set) — the spec
// overrides the lattice alone, regardless of option order.
func WithLattice(spec string) SessionOption { return func(s *Session) { s.latSpec = spec } }

// WithGenConfig sets the whole generator configuration (shape knobs and
// lattice together); a WithLattice spec, given in either order, overrides
// just the lattice.
func WithGenConfig(g GenConfig) SessionOption { return func(s *Session) { s.gcfg = g } }

// WithSeed sets the campaign seed: global index i generates its program
// from seed+i and seeds its NI experiment with seed+i.
func WithSeed(seed int64) SessionOption { return func(s *Session) { s.seed = seed } }

// WithWorkers bounds the analysis worker pool (<= 0 = GOMAXPROCS).
func WithWorkers(n int) SessionOption { return func(s *Session) { s.workers = n } }

// WithNIBudget sets the base NI trials per program and the adaptive
// escalation ceiling for IFC-rejected programs (0 = the campaign
// defaults, 4 and 8x; max < trials disables adaptation).
func WithNIBudget(trials, max int) SessionOption {
	return func(s *Session) { s.trials, s.trialsMax = trials, max }
}

// WithNIOracle selects the noninterference backend for every operation:
// "adaptive" (the default — randomized sampling with escalation on
// IFC-rejected programs), "randomized" (flat sampling, no escalation), or
// "exhaustive" (internal/exhaust: enumerate every secret assignment and
// return proof-grade proved-secure / proved-insecure verdicts, falling
// back to sampling when the secret space exceeds the budget). "" keeps
// the default. NewSession rejects unknown names eagerly.
func WithNIOracle(name string) SessionOption { return func(s *Session) { s.niOracle = name } }

// WithExhaustBudget bounds the exhaustive oracle's enumeration: budget is
// the assignment ceiling per observer (0 = the default 2^16), probes the
// number of public-input probes when only the secret space fits (0 =
// derived from the budget). No effect under the sampling oracles.
func WithExhaustBudget(budget uint64, probes int) SessionOption {
	return func(s *Session) { s.exhaustBudget, s.exhaustProbes = budget, probes }
}

// WithMutation enables the coverage-guided loop: frac of the campaign's
// jobs become AST-level mutants of corpus findings (0 = the default 0.5).
func WithMutation(frac float64) SessionOption {
	return func(s *Session) { s.mutate, s.mutateFrac = true, frac }
}

// WithMinimize shrinks each finding to the smallest program reproducing
// its class before dedup and persistence.
func WithMinimize() SessionOption { return func(s *Session) { s.minimize = true } }

// WithShard selects this process's slice of the campaign: global indices
// ≡ shard (mod numShards).
func WithShard(shard, numShards int) SessionOption {
	return func(s *Session) { s.shard, s.numShards = shard, numShards }
}

// WithResume continues campaigns from the shard's persisted corpus cursor
// instead of index 0.
func WithResume() SessionOption { return func(s *Session) { s.resume = true } }

// WithMaxPerClass caps findings processed per class per campaign run
// (0 = default 25, negative = unlimited).
func WithMaxPerClass(n int) SessionOption { return func(s *Session) { s.maxPerClass = n } }

// WithMaxNovelty caps the triage report's seed-novelty ranking
// (0 = default 10, negative = unlimited).
func WithMaxNovelty(n int) SessionOption { return func(s *Session) { s.maxNovelty = n } }

// WithPromoteDir sets the retired-corpus directory Retire promotes
// drifted findings into ("" = <corpus>/../retired-corpus).
func WithPromoteDir(dir string) SessionOption { return func(s *Session) { s.promoteDir = dir } }

// WithLog directs the operations' line-oriented progress log (per-finding
// lines, drift lines) to w; nil discards.
func WithLog(w io.Writer) SessionOption { return func(s *Session) { s.log = w } }

// WithEventBuffer sets the Events channel's buffer (default 1024). A full
// buffer drops events rather than stalling the engines; Dropped counts
// the loss.
func WithEventBuffer(n int) SessionOption { return func(s *Session) { s.eventBuf = n } }

// NewSession builds a configured Session. It validates the configuration
// eagerly — an unresolvable lattice spec or an out-of-range shard fails
// here, not minutes into a campaign.
func NewSession(opts ...SessionOption) (*Session, error) {
	s := &Session{numShards: 1, eventBuf: 1024, metrics: metrics.NewRegistry()}
	for _, opt := range opts {
		opt(s)
	}
	// Defaults first, lattice override second: WithLattice alone must not
	// zero the shape knobs (a {Lattice: spec} config is not "the default
	// shape with a taller lattice" — it is an action-free generator).
	if s.gcfg == (gen.Config{}) {
		s.gcfg = gen.DefaultConfig()
	}
	if s.latSpec != "" {
		s.gcfg.Lattice = s.latSpec
	}
	if err := s.gcfg.Validate(); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	if s.numShards <= 0 {
		s.numShards = 1
	}
	if s.shard < 0 || s.shard >= s.numShards {
		return nil, fmt.Errorf("session: shard %d out of range for %d shards", s.shard, s.numShards)
	}
	if s.mutateFrac < 0 || s.mutateFrac > 1 {
		return nil, fmt.Errorf("session: mutation fraction %v out of [0, 1] (0 = the default 0.5)", s.mutateFrac)
	}
	if s.resume && s.corpusDir == "" {
		return nil, fmt.Errorf("session: WithResume requires WithCorpus — without a corpus there is no cursor")
	}
	if !pipeline.ValidOracle(s.niOracle) {
		return nil, fmt.Errorf("session: unknown NI oracle %q (want %q, %q, or %q)",
			s.niOracle, pipeline.OracleAdaptive, pipeline.OracleRandomized, pipeline.OracleExhaustive)
	}
	return s, nil
}

// Events returns the session's structured event stream. Call it before
// starting an operation; events from operations started earlier were
// discarded. The channel is buffered (WithEventBuffer); when a listener
// falls behind, events are dropped — counted by Dropped — rather than
// stalling the engines, so ranging over the channel concurrently with the
// operation is always safe. Close closes the channel.
func (s *Session) Events() <-chan Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.events == nil && !s.closed {
		s.events = make(chan Event, s.eventBuf)
	}
	return s.events
}

// Dropped reports how many events were discarded because the Events
// buffer was full.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

// Close closes the event stream (a convenient form is defer s.Close()
// next to NewSession). It is safe to call at any time, including from
// the event-listener goroutine while an operation is still running — the
// operation continues, its remaining events are discarded.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.events != nil {
		close(s.events)
	}
	return nil
}

// sink adapts the event channel for the engines: non-blocking sends into
// the buffer, drops counted. A session nobody listens to emits nothing.
// Each send holds the session lock, so a concurrent Close never races a
// send onto the closed channel; events are coarse enough (one per
// analyzed program at most) that the lock is noise next to the analysis.
func (s *Session) sink() events.Sink {
	s.mu.Lock()
	listening := s.events != nil && !s.closed
	s.mu.Unlock()
	if !listening {
		return nil
	}
	return func(e Event) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return
		}
		select {
		case s.events <- e:
		default:
			s.dropped.Add(1)
		}
	}
}

// emitCritical delivers e even when the buffer is full, by displacing the
// oldest buffered events (each counted as dropped) until the send lands.
// Op framing and the drop-count warning use this path: a stream missing
// its op-end, or missing the warning that says events were lost, would
// make an incomplete stream look complete. The displacement loop is
// bounded — with an unbuffered channel and no receiver, the event itself
// is counted dropped rather than spinning.
func (s *Session) emitCritical(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.events == nil || s.closed {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	for i := 0; i <= cap(s.events); i++ {
		select {
		case s.events <- e:
			return
		default:
		}
		select {
		case <-s.events:
			s.dropped.Add(1)
		default:
		}
	}
	s.dropped.Add(1)
}

// startOp frames one operation's event stream: an op-start event now, and
// the returned finish func emits — when the listener lost events since
// op-start — a warning carrying the drop count, then the op-end event
// with the outcome detail. Framing events are never dropped (see
// emitCritical), so a consumer that saw op-end without a drop warning
// holds the operation's complete stream.
func (s *Session) startOp(op string) func(detail string) {
	before := s.dropped.Load()
	t0 := time.Now()
	s.emitCritical(Event{Kind: events.KindOpStart, Op: op})
	return func(detail string) {
		s.metrics.Histogram("session_op_seconds", metrics.DurationBuckets, "op", op).ObserveDuration(time.Since(t0))
		if d := s.dropped.Load() - before; d > 0 {
			s.emitCritical(Event{
				Kind: events.KindWarning, Op: op, Done: int(d),
				Detail: fmt.Sprintf("%d events dropped by a slow listener — this stream is incomplete", d),
			})
		}
		s.emitCritical(Event{Kind: events.KindOpEnd, Op: op, Detail: detail})
		s.writeMetricsSnapshot()
	}
}

// Metrics returns a point-in-time snapshot of the session's telemetry:
// job/verdict/finding counters, per-stage pipeline histograms, NI budget
// spend, and per-operation duration histograms, accumulated across every
// operation this session has run.
func (s *Session) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// writeMetricsSnapshot persists the registry as <corpus>/metrics.json
// (atomically, temp+rename) so every run leaves a machine-diffable
// telemetry artifact next to its findings. Sessions without a corpus
// directory have nowhere durable to write; a write failure costs the
// artifact, never the operation.
func (s *Session) writeMetricsSnapshot() {
	if s.corpusDir == "" {
		return
	}
	if err := os.MkdirAll(s.corpusDir, 0o755); err != nil {
		return
	}
	// Merge-on-write (UpdateFile): this session overwrites only its own
	// series, so telemetry another process left in the artifact — a fleet
	// run's worker-labeled counters, say — survives a later triage pass.
	if err := metrics.UpdateFile(filepath.Join(s.corpusDir, "metrics.json"), s.metrics.Snapshot()); err != nil && s.log != nil {
		fmt.Fprintf(s.log, "session: %v (metrics snapshot lost)\n", err)
	}
}

// opOutcome renders an op-end detail: the error when the operation
// failed, the summary otherwise.
func opOutcome(err error, summary string) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return summary
}

// Campaign runs n global campaign indices' worth of streaming
// differential fuzzing under the session's configuration: lazily
// generated (and, with WithMutation, corpus-mutated) programs flow
// through the analysis pipeline; interesting ones are deduplicated,
// optionally minimized, and persisted to the session corpus. Job-done,
// finding, and progress events stream to Events while it runs.
func (s *Session) Campaign(ctx context.Context, n int) (*CampaignReport, error) {
	var corp *Corpus
	if s.corpusDir != "" {
		var err error
		if corp, err = s.Corpus(); err != nil {
			return nil, err
		}
	}
	finish := s.startOp("campaign")
	rep, err := campaign.Run(ctx, campaign.Config{
		N:             n,
		Seed:          s.seed,
		Gen:           s.gcfg,
		NITrials:      s.trials,
		NITrialsMax:   s.trialsMax,
		NIOracle:      s.niOracle,
		ExhaustBudget: s.exhaustBudget,
		ExhaustProbes: s.exhaustProbes,
		Workers:       s.workers,
		Shard:         s.shard,
		NumShards:     s.numShards,
		Mutate:        s.mutate,
		MutateFrac:    s.mutateFrac,
		CorpusDir:     s.corpusDir,
		Corpus:        corp,
		Resume:        s.resume,
		Minimize:      s.minimize,
		MaxPerClass:   s.maxPerClass,
		Log:           s.log,
		Events:        s.sink(),
		Metrics:       s.metrics,
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("analyzed %d, %d new findings", rep.Analyzed, rep.NewFindings)
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// CampaignWindow runs the campaign over exactly the global indices
// [lo, hi) at stride 1 — the fleet's lease execution mode. Sharding and
// resume configuration are ignored: the window already is one worker's
// slice, and coverage is the coordinator's to track, so the run neither
// reads nor writes the shard cursor.
func (s *Session) CampaignWindow(ctx context.Context, lo, hi int64) (*CampaignReport, error) {
	var corp *Corpus
	if s.corpusDir != "" {
		var err error
		if corp, err = s.Corpus(); err != nil {
			return nil, err
		}
	}
	finish := s.startOp("campaign")
	rep, err := campaign.Run(ctx, campaign.Config{
		Window:        &campaign.Window{Lo: lo, Hi: hi},
		Seed:          s.seed,
		Gen:           s.gcfg,
		NITrials:      s.trials,
		NITrialsMax:   s.trialsMax,
		NIOracle:      s.niOracle,
		ExhaustBudget: s.exhaustBudget,
		ExhaustProbes: s.exhaustProbes,
		Workers:       s.workers,
		Mutate:        s.mutate,
		MutateFrac:    s.mutateFrac,
		CorpusDir:     s.corpusDir,
		Corpus:        corp,
		Minimize:      s.minimize,
		MaxPerClass:   s.maxPerClass,
		Log:           s.log,
		Events:        s.sink(),
		Metrics:       s.metrics,
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("window [%d, %d): analyzed %d, %d new findings",
			lo, hi, rep.Analyzed, rep.NewFindings)
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// needCorpus guards the corpus-reading operations: without WithCorpus
// there is nothing to open, and silently scanning the current directory
// would mask a misconfigured session.
func (s *Session) needCorpus(op string) error {
	if s.corpusDir == "" {
		return fmt.Errorf("session: %s needs a corpus (WithCorpus)", op)
	}
	return nil
}

// Replay re-checks every finding in the session corpus against the
// current checker stack — the corpus as a regression suite. Drift events
// stream to Events; the report lists every mismatch.
func (s *Session) Replay(ctx context.Context) (*ReplayReport, error) {
	if err := s.needCorpus("Replay"); err != nil {
		return nil, err
	}
	corp, err := s.Corpus()
	if err != nil {
		return nil, err
	}
	finish := s.startOp("replay")
	rep, err := campaign.Replay(ctx, campaign.ReplayConfig{
		CorpusDir:   s.corpusDir,
		Corpus:      corp,
		NITrials:    s.trials,
		NITrialsMax: s.trialsMax,
		Log:         s.log,
		Events:      s.sink(),
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("replayed %d, %d drifted", rep.Total, len(rep.Drifts))
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// Triage clusters the session corpus by (verdict class, cited rule, AST
// shape) into the ranked analytics report; cluster events stream to
// Events.
func (s *Session) Triage() (*TriageReport, error) {
	if err := s.needCorpus("Triage"); err != nil {
		return nil, err
	}
	corp, err := s.Corpus()
	if err != nil {
		return nil, err
	}
	finish := s.startOp("triage")
	rep, err := triage.Triage(triage.Config{
		CorpusDir:  s.corpusDir,
		Corpus:     corp,
		MaxNovelty: s.maxNovelty,
		Events:     s.sink(),
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("%d findings in %d clusters", rep.Total, len(rep.Clusters))
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// Retire runs the corpus hygiene pass: findings whose recorded defect the
// current stack no longer reproduces are promoted into the retired corpus
// (WithPromoteDir) and removed from the live one. Retired events stream
// to Events.
func (s *Session) Retire(ctx context.Context) (*RetireReport, error) {
	if err := s.needCorpus("Retire"); err != nil {
		return nil, err
	}
	corp, err := s.Corpus()
	if err != nil {
		return nil, err
	}
	finish := s.startOp("retire")
	rep, err := triage.Retire(ctx, triage.RetireConfig{
		CorpusDir:   s.corpusDir,
		Corpus:      corp,
		PromoteDir:  s.promoteDir,
		NITrials:    s.trials,
		NITrialsMax: s.trialsMax,
		Log:         s.log,
		Events:      s.sink(),
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("replayed %d, retired %d", rep.Total, len(rep.Retired))
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// Compact re-minimizes every finding in the session corpus with the
// current shrinker and folds newly-equal dedup keys together: entries
// whose minimized form matches an existing finding collapse onto it,
// strictly-smaller forms replace their originals promote-first (the new
// pair persists before the old one is removed), and entries that no
// longer reproduce their recorded class are left for Retire. Job-done
// and progress events stream to Events.
func (s *Session) Compact(ctx context.Context) (*CompactReport, error) {
	if err := s.needCorpus("Compact"); err != nil {
		return nil, err
	}
	corp, err := s.Corpus()
	if err != nil {
		return nil, err
	}
	finish := s.startOp("compact")
	rep, err := campaign.Compact(ctx, campaign.CompactConfig{
		CorpusDir:   s.corpusDir,
		Corpus:      corp,
		NITrials:    s.trials,
		NITrialsMax: s.trialsMax,
		Log:         s.log,
		Events:      s.sink(),
		Metrics:     s.metrics,
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("%d entries, %d minimized, %d collapsed", rep.Total, rep.Minimized, rep.Collapsed)
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// batchOptions is the pipeline configuration the session's batch-analysis
// methods share: full NI, the session's budgets, seed, and worker pool.
func (s *Session) batchOptions() pipeline.Options {
	return pipeline.Options{
		Workers:       s.workers,
		NI:            pipeline.NIAll,
		NITrials:      s.trials,
		NITrialsMax:   s.trialsMax,
		NISeed:        s.seed,
		Oracle:        s.niOracle,
		ExhaustBudget: s.exhaustBudget,
		ExhaustProbes: s.exhaustProbes,
		Metrics:       s.metrics,
	}
}

// CheckAll batch-analyzes jobs concurrently under the session's
// configuration: parse → resolve → baseline-check → IFC-check → NI
// experiment per job. One job-done event per classified result streams to
// Events (Op "check"), inside op-start/op-end framing. It returns the
// partial summary and ctx.Err() if cancelled mid-batch.
func (s *Session) CheckAll(ctx context.Context, jobs []BatchJob) (*BatchSummary, error) {
	finish := s.startOp("check")
	sum, err := pipeline.Run(ctx, jobs, s.batchOptions())
	sink := s.sink()
	summary := ""
	if sum != nil {
		for i := range sum.Results {
			r := &sum.Results[i]
			v, _ := difftest.Classify(r)
			sink.Emit(Event{
				Kind: events.KindJobDone, Op: "check",
				Index: int64(i), Class: v.String(), Rule: r.CitedRule(),
			})
		}
		summary = fmt.Sprintf("checked %d jobs", len(sum.Results))
	}
	finish(opOutcome(err, summary))
	return sum, err
}

// CheckStream is the channel-fed variant of CheckAll for corpora too
// large (or too lazily produced) to materialize: workers pull jobs as
// they arrive and results land on the returned channel in completion
// order. Each job's NI experiment runs with the session seed + job.Seq,
// so the producer controls reproducibility by numbering jobs. A job-done
// event per result streams to Events (Op "check-stream"); op-end is
// emitted when the result channel closes. Cancelling ctx stops the
// workers; producers must select on ctx.Done when sending.
func (s *Session) CheckStream(ctx context.Context, jobs <-chan BatchJob) <-chan BatchResult {
	finish := s.startOp("check-stream")
	sink := s.sink()
	results := pipeline.RunStream(ctx, jobs, s.batchOptions())
	out := make(chan BatchResult)
	go func() {
		defer close(out)
		n := 0
		for r := range results {
			v, _ := difftest.Classify(&r)
			sink.Emit(Event{
				Kind: events.KindJobDone, Op: "check-stream",
				Index: r.Job.Seq, Class: v.String(), Rule: r.CitedRule(),
			})
			select {
			case out <- r:
				n++
			case <-ctx.Done():
				// The consumer is gone; drain the pipeline so its workers
				// exit, then close out.
				for range results {
				}
				finish(opOutcome(ctx.Err(), ""))
				return
			}
		}
		finish(fmt.Sprintf("streamed %d results", n))
	}()
	return out
}

// DiffFuzz runs a one-shot differential soundness-fuzzing campaign under
// the session's configuration: n random programs generated and
// cross-checked against the IFC checker, the baseline checker, and the NI
// harness. Report.OK() is false iff the campaign found an implementation
// defect. Job-done and finding events stream to Events (Op "fuzz") —
// batched at classification time, after the pipeline drains; Campaign is
// the streaming, corpus-persisting form.
func (s *Session) DiffFuzz(ctx context.Context, n int) (*FuzzReport, error) {
	finish := s.startOp("fuzz")
	rep, err := difftest.Run(ctx, difftest.Config{
		N:             n,
		Seed:          s.seed,
		Gen:           s.gcfg,
		NITrials:      s.trials,
		NITrialsMax:   s.trialsMax,
		Oracle:        s.niOracle,
		ExhaustBudget: s.exhaustBudget,
		ExhaustProbes: s.exhaustProbes,
		Workers:       s.workers,
		Events:        s.sink(),
	})
	summary := ""
	if rep != nil {
		summary = fmt.Sprintf("analyzed %d, %d findings", rep.Analyzed, len(rep.Findings))
	}
	finish(opOutcome(err, summary))
	return rep, err
}

// Minimize delta-debugs src down to a smaller program for which keep
// still holds. keep must hold on src itself and is only called on
// parseable candidates; the result always parses and is never larger.
func (s *Session) Minimize(file, src string, keep func(src string) bool) (string, error) {
	res, err := shrink.Minimize(file, src, keep)
	return res.Source, err
}

// Corpus returns the session's corpus handle, opening it on first use.
// The handle is shared: every operation on the session — Campaign,
// Replay, Triage, Retire, Compact — reads and writes through this one
// handle, so its metadata index is loaded once per session and its
// source, parse, and fingerprint caches accumulate across operations
// instead of being rebuilt per call.
func (s *Session) Corpus() (*Corpus, error) {
	if s.corpusDir == "" {
		return nil, fmt.Errorf("session: no corpus configured (WithCorpus)")
	}
	s.mu.Lock()
	corp := s.corp
	s.mu.Unlock()
	if corp != nil {
		return corp, nil
	}
	// Open outside the lock: a corrupt index emits a warning event through
	// the sink, which takes the lock itself. The sink is resolved at emit
	// time, so warnings reach listeners attached after the open too.
	corp, err := corpus.OpenSink(s.corpusDir, func(e Event) { s.sink().Emit(e) })
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corp == nil {
		s.corp = corp
	}
	return s.corp, nil
}
