// Package repro is the public API of the P4BID reproduction: an
// information-flow control (IFC) type system for the Core P4 fragment of
// Grewal, D'Antoni, and Hsu, "P4BID: Information Flow Control in P4"
// (PLDI 2022), together with the substrates the paper depends on — a P4
// frontend, a baseline (label-insensitive) Core P4 typechecker, a Core P4
// interpreter with a match-action control-plane simulator, and a
// non-interference testing harness.
//
// # Quick start: checking one program
//
//	prog, err := repro.Parse("leak.p4", src)
//	res := repro.Check(prog, repro.TwoPoint())
//	if !res.OK {
//	    fmt.Println(res.Err()) // each error cites the violated typing rule
//	}
//
// Programs are written in P4-16 surface syntax with security annotations
// on types: <bit<8>, high> marks an 8-bit secret field. Unannotated types
// default to the lattice bottom (public/trusted). Control blocks may be
// checked in a raised security context with @pc(label), as the paper's
// isolation case study does for Alice (pc = A) and Bob (pc = B).
//
// # Quick start: the campaign stack
//
// Long-running validation — fuzz campaigns, regression replay, corpus
// analytics, corpus hygiene — runs through one configured Session over
// one on-disk finding Corpus:
//
//	s, err := repro.NewSession(
//	    repro.WithCorpus("fuzz-corpus"),
//	    repro.WithLattice("chain:4"),
//	    repro.WithMutation(0.5),
//	    repro.WithNIBudget(4, 32),
//	)
//	defer s.Close()
//	go func() { // optional: live progress
//	    for ev := range s.Events() {
//	        fmt.Println(ev.Op, ev.Kind, ev.Class, ev.Detail)
//	    }
//	}()
//	rep, err := s.Campaign(ctx, 20000) // fuzz 20k programs, persist findings
//	rr, err := s.Replay(ctx)           // corpus as regression suite
//	tr, err := s.Triage()              // ranked (class, rule, shape) clusters
//	cr, err := s.Compact(ctx)          // re-minimize, fold equal findings
//	fr, err := s.DiffFuzz(ctx, 2000)   // one-shot fuzz, no corpus needed
//	bs, err := s.CheckAll(ctx, jobs)   // batch-analyze caller-supplied jobs
//
// # Quick start: selecting the noninterference oracle
//
// By default NI verdicts are sampled: randomized trials with adaptive
// escalation on IFC-rejected programs. WithNIOracle switches the backend;
// "exhaustive" enumerates every secret assignment (within a budget) on
// the compiled engine and upgrades clean results to proofs:
//
//	s, err := repro.NewSession(
//	    repro.WithCorpus("fuzz-corpus"),
//	    repro.WithNIOracle("exhaustive"),        // or "adaptive", "randomized"
//	    repro.WithExhaustBudget(1<<20, 16),      // 2^20 assignments, 16 probes
//	)
//
// Under the exhaustive oracle an IFC-rejected, violation-free program is
// split by enumeration coverage instead of pooling into rejected-clean:
// class "proved-imprecise" (the whole public × secret input space
// enumerated clean — the rejection is conservatism, a proved false
// positive), "secret-exhaustive" (every secret assignment clean, but
// only at sampled public probes because the public side exceeded the
// budget — strong evidence of conservatism, not a full-space proof), or
// "under-tested" (the secret space exceeded the budget, so only the
// sampling fallback ran). Programs with a witnessed violation are exact
// counterexamples either way. The oracle and budget are recorded in each
// finding's metadata, so Replay re-judges under the same oracle.
//
// Every operation frames its events with op-start/op-end (op-end carries
// a one-line outcome), so one consumer can interleave many operations'
// events; if a slow consumer forces the stream to shed events, the
// operation ends with a warning event carrying the drop count. The
// p4fuzz CLI exposes the stream as text (-events) or as one JSON object
// per line (-events-json), and cmd/p4fuzzd runs campaigns as a
// work-leasing fleet of processes coordinated through files under
// <corpus>/fleet/ — see internal/fleet and EXPERIMENTS.md.
//
// Every operation also records telemetry — job counters, per-stage
// pipeline timings, op-duration histograms — into the Session's metrics
// registry: Session.Metrics returns the live snapshot, and the same
// snapshot is persisted as metrics.json next to the corpus when each
// operation ends. `p4fuzzd -http ADDR` serves the fleet-merged form
// live (/metrics, /metrics.json, /healthz, /debug/pprof) while a fleet
// runs — see internal/metrics and the fleet telemetry section of
// EXPERIMENTS.md.
//
// The Session owns the corpus handle: the directory is opened once (its
// metadata index makes that open cheap — sources are read and parsed only
// when an operation needs them), and every operation reads and writes
// through the same cached handle. NI checking inside a campaign compiles
// each program once per job — the trials themselves run on the compiled
// engine (falling back to the tree-walking interpreter only if
// compilation fails), so the per-trial cost is the compiled rate
// recorded in BENCH_ni.json, not the interpreter's. Session.Corpus exposes it for direct
// queries:
//
//	c, err := s.Corpus()
//	for e := range c.Select(repro.CorpusFilter{Class: "rejected-clean"}) {
//	    fmt.Println(e.Path, e.Rule())
//	}
//	fmt.Printf("%+v\n", c.Stats())
//
// The pre-Session entry points (Campaign, Replay, Triage, Retire,
// MinimizeProgram and their config structs) remain as deprecated
// one-line wrappers with identical behavior.
package repro

import (
	"context"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/basecheck"
	"repro/internal/campaign"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/eval"
	"repro/internal/lattice"
	"repro/internal/mutate"
	"repro/internal/ni"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/progs"
	"repro/internal/shrink"
	"repro/internal/triage"
)

// Program is a parsed P4 program.
type Program = ast.Program

// Result is the outcome of IFC typechecking; see Err, Diags, and the
// inferred FuncPC/TablePC labels.
type Result = core.Result

// BaseResult is the outcome of label-insensitive (baseline) typechecking.
type BaseResult = basecheck.Result

// Lattice is a security lattice; Label is one of its elements.
type (
	Lattice = lattice.Lattice
	Label   = lattice.Label
)

// Parse parses a P4 program in the paper's fragment. file names the source
// in diagnostics.
func Parse(file, src string) (*Program, error) { return parser.Parse(file, src) }

// MustParse is Parse panicking on error; for known-good embedded sources.
func MustParse(file, src string) *Program { return parser.MustParse(file, src) }

// Check typechecks prog with the P4BID IFC type system over lat.
// Well-typed programs satisfy non-interference (the paper's Theorem 4.3).
func Check(prog *Program, lat Lattice) *Result { return core.Check(prog, lat) }

// CheckBase typechecks prog with the ordinary Core P4 type system,
// ignoring security labels — the paper's Table 1 baseline ("p4c").
func CheckBase(prog *Program) *BaseResult { return basecheck.Check(prog) }

// TwoPoint returns the {low ⊑ high} lattice.
func TwoPoint() Lattice { return lattice.TwoPoint() }

// Diamond returns the four-point isolation lattice of Figure 8b:
// bot ⊑ A, B ⊑ top.
func Diamond() Lattice { return lattice.Diamond() }

// NParty generalizes Diamond to the named parties.
func NParty(names ...string) Lattice { return lattice.NParty(names...) }

// LatticeByName resolves "two-point", "diamond", "chain:N", "nparty:N",
// "powerset:N", or "product:a,b" (a and b themselves specs).
func LatticeByName(name string) (Lattice, error) { return lattice.ByName(name) }

// Powerset returns the subset lattice over the given atoms, with
// label-safe element spellings ("p_a_b"; brace forms stay as aliases).
func Powerset(atoms ...string) Lattice { return lattice.Powerset(atoms...) }

// Product returns the component-wise product of two lattices, with
// label-safe element spellings ("x_low_high"; "low×high" forms stay as
// aliases) — e.g. a confidentiality lattice crossed with an integrity
// lattice.
func Product(a, b Lattice) Lattice { return lattice.Product(a, b) }

// ControlPlane holds installed match-action table entries; see the
// controlplane helpers re-exported below.
type ControlPlane = controlplane.ControlPlane

// Entry, Pattern, and ActionCall describe installed table state.
type (
	Entry      = controlplane.Entry
	Pattern    = controlplane.Pattern
	ActionCall = controlplane.ActionCall
)

// NewControlPlane returns an empty control plane.
func NewControlPlane() *ControlPlane { return controlplane.New() }

// Exact, LPM, Ternary, and Wildcard build match patterns for w-bit keys.
func Exact(w int, v uint64) Pattern              { return controlplane.Exact(w, v) }
func LPM(w int, prefix uint64, plen int) Pattern { return controlplane.LPM(w, prefix, plen) }
func Ternary(w int, v, mask uint64) Pattern      { return controlplane.Ternary(w, v, mask) }
func Wildcard(w int) Pattern                     { return controlplane.Wildcard(w) }

// Interp executes programs; Value and Signal are its runtime types.
type (
	Interp = eval.Interp
	Value  = eval.Value
	Signal = eval.Signal
)

// NewInterp prepares an interpreter for prog against cp (nil = empty).
func NewInterp(prog *Program, cp *ControlPlane) (*Interp, error) { return eval.New(prog, cp) }

// NIExperiment is a randomized two-run non-interference experiment; see
// internal/ni for the trial protocol.
type NIExperiment = ni.Experiment

// NIViolation is a concrete interference witness.
type NIViolation = ni.Violation

// CaseStudy is one of the paper's Section 5 programs; CaseStudies returns
// them in Table 1 order (D2R, App, Lattice, Topology, Cache) plus
// NetChain.
type CaseStudy = progs.Program

// CaseStudies returns all embedded case studies.
func CaseStudies() []*CaseStudy { return progs.All() }

// CaseStudyByName looks a case study up by its Table 1 row name.
func CaseStudyByName(name string) (*CaseStudy, bool) { return progs.ByName(name) }

// Variants of a case study.
const (
	Buggy       = progs.Buggy
	Fixed       = progs.Fixed
	Unannotated = progs.Unannotated
)

// StripAnnotations removes security annotations from source text, yielding
// the plain-P4 program a stock compiler would see.
func StripAnnotations(src string) string { return progs.StripAnnotations(src) }

// PrintProgram renders a parsed program back into parseable surface syntax.
func PrintProgram(prog *Program) string { return ast.Print(prog) }

// BatchJob names one program for batch analysis; BatchOptions configures
// the worker pool; BatchSummary aggregates the run (see internal/pipeline).
type (
	BatchJob     = pipeline.Job
	BatchOptions = pipeline.Options
	BatchSummary = pipeline.Summary
	BatchResult  = pipeline.JobResult
)

// NI-stage modes for BatchOptions.NI.
const (
	NIOff      = pipeline.NIOff
	NIAccepted = pipeline.NIAccepted
	NIAll      = pipeline.NIAll
)

// CheckAll batch-analyzes jobs concurrently with a bounded worker pool,
// running parse → resolve → baseline-check → IFC-check → (optionally) an
// NI experiment per job. It returns the partial summary and ctx.Err() if
// cancelled mid-batch.
//
// Deprecated: configure a Session and call Session.CheckAll — same
// pipeline, same summary, plus the event stream. This wrapper remains so
// existing callers keep working.
func CheckAll(ctx context.Context, jobs []BatchJob, opts BatchOptions) (*BatchSummary, error) {
	return pipeline.Run(ctx, jobs, opts)
}

// FuzzConfig configures DiffFuzz; FuzzReport is its verdict table (see
// internal/difftest for the verdict classes).
type (
	FuzzConfig = difftest.Config
	FuzzReport = difftest.Report
)

// DiffFuzz runs a differential soundness-fuzzing campaign: cfg.N random
// programs are generated and cross-checked against the IFC checker, the
// baseline checker, and the NI harness. Report.OK() is false iff the
// campaign found an implementation defect (a soundness violation, a
// generator bug, or a runtime error).
//
// Deprecated: configure a Session and call Session.DiffFuzz — same
// harness, same report, plus the event stream. This wrapper remains so
// existing callers keep working.
func DiffFuzz(ctx context.Context, cfg FuzzConfig) (*FuzzReport, error) {
	return difftest.Run(ctx, cfg)
}

// FormatFuzzReport renders the campaign's verdict table.
func FormatFuzzReport(r *FuzzReport) string { return difftest.FormatReport(r) }

// CheckStream is the channel-fed variant of CheckAll for corpora too large
// (or too lazily produced) to materialize: workers pull jobs as they
// arrive and deliver results on the returned channel in completion order.
// Each job's NI experiment runs with opts.NISeed + job.Seq, so the
// producer controls reproducibility by numbering jobs. Cancelling ctx
// stops the workers without leaking goroutines; producers must select on
// ctx.Done when sending.
//
// Deprecated: configure a Session and call Session.CheckStream — same
// pipeline, same results, plus the event stream. This wrapper remains so
// existing callers keep working.
func CheckStream(ctx context.Context, jobs <-chan BatchJob, opts BatchOptions) <-chan BatchResult {
	return pipeline.RunStream(ctx, jobs, opts)
}

// CampaignConfig configures Campaign; CampaignReport is its outcome and
// CampaignFinding one collected program (see internal/campaign for the
// corpus layout and class set).
type (
	CampaignConfig  = campaign.Config
	CampaignReport  = campaign.Report
	CampaignFinding = campaign.Finding
)

// Campaign runs a streaming, shardable, resumable differential-fuzz
// campaign: the long-running form of DiffFuzz. Jobs are generated lazily
// and streamed through the analysis pipeline; interesting programs
// (soundness findings, precision findings, parser disagreements) are
// deduplicated, optionally minimized to the smallest program reproducing
// their verdict class, and persisted to cfg.CorpusDir with replayable
// verdict metadata. Shard i of n covers global indices ≡ i (mod n) of the
// same deterministic job set, so shards split a campaign across processes
// and their corpus dirs merge by file copy; cfg.Resume continues from the
// shard's persisted cursor.
//
// Deprecated: configure a Session (NewSession, WithCorpus, WithMutation,
// ...) and call Session.Campaign — same engine, same report, plus the
// event stream. This wrapper remains so existing callers keep working.
func Campaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	return campaign.Run(ctx, cfg)
}

// FormatCampaignReport renders a campaign report: the verdict table plus
// corpus, dedup, and minimization statistics.
func FormatCampaignReport(r *CampaignReport) string { return campaign.FormatReport(r) }

// CompactConfig configures a corpus compaction; CompactReport is its
// outcome. Prefer Session.Compact — the config form exists for callers
// threading their own corpus handle.
type (
	CompactConfig = campaign.CompactConfig
	CompactReport = campaign.CompactReport
)

// Compact re-minimizes every finding in cfg.CorpusDir with the current
// shrinker and folds newly-equal dedup keys together, promote-first so no
// finding is lost mid-compaction. Prefer Session.Compact — same pass,
// same report, plus the event stream.
func Compact(ctx context.Context, cfg CompactConfig) (*CompactReport, error) {
	return campaign.Compact(ctx, cfg)
}

// FormatCompactReport renders a compaction's outcome.
func FormatCompactReport(r *CompactReport) string { return campaign.FormatCompactReport(r) }

// MinimizeProgram delta-debugs src down to a smaller program for which
// keep still holds, by deleting statements, declarations, fields, table
// keys, and branches at the AST level. The result always parses, keep
// holds on it, and it is never larger than src. keep must hold on src
// itself and is only called on parseable candidates.
//
// Deprecated: use Session.Minimize. This wrapper remains so existing
// callers keep working.
func MinimizeProgram(file, src string, keep func(src string) bool) (string, error) {
	res, err := shrink.Minimize(file, src, keep)
	return res.Source, err
}

// MutateConfig configures Mutate (see internal/mutate for the operator
// set: relabel against the campaign lattice, operator swaps, literal
// perturbation, clone-and-perturb, wrap-in-if, donor splicing, statement
// deletion).
type MutateConfig = mutate.Config

// Mutate applies semantically-aware random mutations (seeded by seed) to
// a P4 program and returns the mutant's source. The mutant is guaranteed
// to parse, resolve under the campaign lattice named by cfg.Lattice, pass
// the baseline checker, and differ from the input's canonical print; IFC
// acceptance is deliberately not guaranteed. Campaigns use this through
// CampaignConfig.Mutate — the corpus-as-seed-pool coverage-guided loop —
// but it is equally a building block for custom search strategies.
func Mutate(seed int64, file, src string, cfg MutateConfig) (string, error) {
	res, err := mutate.Mutate(rand.New(rand.NewSource(seed)), file, src, cfg)
	return res.Source, err
}

// ReplayConfig configures Replay; ReplayReport is its outcome, listing
// any verdict drifts.
type (
	ReplayConfig = campaign.ReplayConfig
	ReplayReport = campaign.ReplayReport
)

// Replay re-checks every finding persisted under cfg.CorpusDir against
// the current checker stack: the corpus as a growing regression suite.
// ReplayReport.OK() is false iff some finding no longer classifies the
// way its metadata records (or could not be replayed at all) — run it as
// a pre-merge gate to catch verdict drift before it lands.
//
// Deprecated: use Session.Replay — same engine, same report, plus drift
// events. This wrapper remains so existing callers keep working.
func Replay(ctx context.Context, cfg ReplayConfig) (*ReplayReport, error) {
	return campaign.Replay(ctx, cfg)
}

// FormatReplayReport renders a replay report: per-class counts plus any
// drifted findings.
func FormatReplayReport(r *ReplayReport) string { return campaign.FormatReplayReport(r) }

// TriageConfig configures Triage; TriageReport is its outcome and
// TriageCluster one (class, rule, shape) group of findings (see
// internal/triage for the fingerprint and clustering semantics).
type (
	TriageConfig  = triage.Config
	TriageReport  = triage.Report
	TriageCluster = triage.Cluster
)

// Triage turns a corpus into structured analytics: every finding gets an
// AST shape fingerprint (a canonical skeleton hash abstracting
// identifiers and literals but keeping statement structure, label
// positions, and operator type-classes), findings are clustered by
// (verdict class, cited typing rule, shape), and the clusters are ranked
// by size with exemplars, origin mix, discovery-time brackets, and NI
// budgets. TriageReport.OK() is false iff some corpus entry is malformed
// (unreadable pair, non-finding metadata, unparseable program) — run it
// as a gate to keep corpus metadata trustworthy.
//
// Deprecated: use Session.Triage — same clustering, same report, plus
// cluster events. This wrapper remains so existing callers keep working.
func Triage(cfg TriageConfig) (*TriageReport, error) { return triage.Triage(cfg) }

// FormatTriageReport renders the ranked cluster table as text;
// MarshalTriageReport as indented JSON.
func FormatTriageReport(r *TriageReport) string           { return triage.FormatReport(r) }
func MarshalTriageReport(r *TriageReport) ([]byte, error) { return triage.MarshalJSONReport(r) }

// FingerprintProgram returns the AST shape fingerprint triage clusters
// by: equal fingerprints mean equal canonical skeletons.
func FingerprintProgram(prog *Program) string { return triage.Fingerprint(prog) }

// TriageDiff is the outcome of comparing two triage reports;
// TriageClusterDelta one cluster whose size moved between them.
type (
	TriageDiff         = triage.DiffReport
	TriageClusterDelta = triage.ClusterDelta
)

// DiffTriageReports compares two triage reports cluster by cluster —
// the time-series view: a cluster only in the new report is a new defect
// class, a grown one is more of a known class, a gone one emptied out.
func DiffTriageReports(old, new *TriageReport) *TriageDiff { return triage.DiffReports(old, new) }

// UnmarshalTriageReport decodes a triage report from the JSON artifact
// form MarshalTriageReport produces — so nightly reports diff across runs.
func UnmarshalTriageReport(raw []byte) (*TriageReport, error) { return triage.UnmarshalReport(raw) }

// FormatTriageDiff renders a triage diff as text; MarkdownTriageDiff as a
// GitHub-flavored Markdown fragment for CI job summaries.
func FormatTriageDiff(d *TriageDiff) string   { return triage.FormatDiff(d) }
func MarkdownTriageDiff(d *TriageDiff) string { return triage.MarkdownDiff(d) }

// RetireConfig configures Retire; RetireReport is its outcome.
type (
	RetireConfig = triage.RetireConfig
	RetireReport = triage.RetireReport
)

// Retire is the corpus hygiene pass: it replays cfg.CorpusDir, promotes
// every finding whose recorded defect the current stack no longer
// reproduces into a retired corpus (re-recorded under its current
// classification, so the fix gains a regression guard), and removes it
// from the live corpus. Entries whose defect still reproduces are kept
// untouched.
//
// Deprecated: use Session.Retire — same pass, same report, plus retired
// events. This wrapper remains so existing callers keep working.
func Retire(ctx context.Context, cfg RetireConfig) (*RetireReport, error) {
	return triage.Retire(ctx, cfg)
}

// FormatRetireReport renders a retire pass's outcome.
func FormatRetireReport(r *RetireReport) string { return triage.FormatRetireReport(r) }
