header data_t {
    <bit<8>, high> hi2;
    <bool, low> blo;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        hdr.d.blo = (8w167 == hdr.d.hi2);
    }
}
