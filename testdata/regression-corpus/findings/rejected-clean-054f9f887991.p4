header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
    <bit<8>, low> lo2;
    <bool, high> bhi;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        if ((((8w219 == hdr.d.hi0) && hdr.d.bhi) && hdr.d.bhi)) {
            hdr.d.lo0 = (8w147 ^ hdr.d.lo2);
        }
    }
}
