header data_t {
    <bit<8>, low> lo0;
    <bit<8>, low> lo1;
    <bit<8>, low> lo2;
    <bit<8>, high> hi2;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action act0() {
        hdr.d.lo1 = (hdr.d.lo0 | (hdr.d.hi2 - hdr.d.lo2));
    }
    apply {
    }
}
