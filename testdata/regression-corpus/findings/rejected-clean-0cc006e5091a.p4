header data_t {
    <bit<8>, high> hi0;
    <bit<8>, low> lo1;
    <bit<8>, high> hi1;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action act0() {
        hdr.d.lo1 = (hdr.d.hi1 - hdr.d.hi0);
    }
    apply {
    }
}
