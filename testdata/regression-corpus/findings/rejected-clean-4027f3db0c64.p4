header data_t {
    <bit<8>, low> lo0;
    <bit<8>, low> lo2;
    <bit<8>, high> hi2;
    <bool, L2> blo;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        if (((hdr.d.blo && (8w229 == hdr.d.lo0)) && hdr.d.blo)) {
            hdr.d.lo2 = ((8w140 + hdr.d.hi2) | (8w192 ^ 8w96));
        }
    }
}
