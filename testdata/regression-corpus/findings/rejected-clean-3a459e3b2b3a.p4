header data_t {
    <bit<8>, L0> f0_0;
    <bit<8>, L1> f1_1;
    <bit<8>, L1> f1_2;
    <bit<8>, L2> f2_1;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action act1() {
        hdr.d.f1_1 = (hdr.d.f2_1 - (hdr.d.f0_0 & hdr.d.f1_2));
    }
    apply {
    }
}
