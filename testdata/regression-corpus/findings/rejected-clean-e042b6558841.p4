header frame_t {
    <bit<8>, low> pkt0;
    <bit<8>, high> sec2;
}
struct headers {
    frame_t d;
}
control Rand_Ingress(inout headers hdr, inout <standard_metadata_t, L1> standard_metadata) {
    action emit0() {
        hdr.d.pkt0 = hdr.d.sec2;
    }
    apply {
    }
}
