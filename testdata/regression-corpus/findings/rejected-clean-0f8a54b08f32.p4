header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi1;
    <bit<8>, low> lo2;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    apply {
        if (((hdr.d.hi1 | hdr.d.lo2) == hdr.d.lo2)) {
            hdr.d.lo0 = hdr.d.lo2;
        }
    }
}
