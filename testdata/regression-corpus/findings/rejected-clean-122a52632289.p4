header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi0;
    <bit<8>, low> lo1;
    <bool, high> bhi;
}
struct headers {
    <data_t, L2> d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action act0() {
        if (((hdr.d.hi0 > hdr.d.hi0) && (hdr.d.bhi && (hdr.d.hi0 == 8w83)))) {
        } else {
            hdr.d.lo1 = ((hdr.d.lo0 - hdr.d.lo1) | hdr.d.lo0);
        }
    }
    apply {
    }
}
