header data_t {
    <bit<8>, low> lo0;
    <bit<8>, high> hi2;
}
struct headers {
    data_t d;
}
control Rand_Ingress(inout headers hdr, inout <standard_metadata_t, L1> standard_metadata) {
    action act0() {
        hdr.d.lo0 = hdr.d.hi2;
    }
    apply {
    }
}
