header hdr_t {
    <bit<8>, low> dst0;
    <bit<8>, high> key2;
}
struct headers {
    hdr_t d;
}
control Rand_Ingress(inout headers hdr, inout standard_metadata_t standard_metadata) {
    action fwd1() {
        hdr.d.dst0 = hdr.d.key2;
    }
    apply {
    }
}
