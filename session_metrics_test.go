// Tests for the Session's telemetry surface: the in-process Metrics()
// snapshot and the metrics.json artifact persisted next to the corpus at
// the end of every operation.
package repro_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/metrics"
)

// TestSessionMetricsPersisted: after a campaign, Metrics() and the
// persisted metrics.json agree with the report — the job counter equals
// the analyzed count (the same number the op-end event summarizes) — and
// the session's own operation histogram recorded the op.
func TestSessionMetricsPersisted(t *testing.T) {
	dir := t.TempDir()
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithGenConfig(smallSessionGen()),
		repro.WithSeed(17),
		repro.WithNIBudget(2, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep, err := s.Campaign(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}

	live := s.Metrics()
	if got := int(live.Counter("campaign_jobs_total")); got != rep.Analyzed {
		t.Errorf("live campaign_jobs_total = %d, report analyzed %d", got, rep.Analyzed)
	}

	persisted, err := metrics.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatalf("metrics.json not persisted next to the corpus: %v", err)
	}
	if got := int(persisted.Counter("campaign_jobs_total")); got != rep.Analyzed {
		t.Errorf("persisted campaign_jobs_total = %d, report analyzed %d", got, rep.Analyzed)
	}
	opSeen := false
	for _, h := range persisted.Histograms {
		if h.Name == "session_op_seconds" && h.Labels["op"] == "campaign" && h.Count > 0 {
			opSeen = true
		}
	}
	if !opSeen {
		t.Error("persisted snapshot has no session_op_seconds{op=\"campaign\"} observation")
	}

	// A second operation on the same session accumulates into the same
	// registry and rewrites the artifact.
	if _, err := s.Replay(context.Background()); err != nil {
		t.Fatalf("replay: %v", err)
	}
	persisted, err = metrics.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	replaySeen := false
	for _, h := range persisted.Histograms {
		if h.Name == "session_op_seconds" && h.Labels["op"] == "replay" && h.Count > 0 {
			replaySeen = true
		}
	}
	if !replaySeen {
		t.Error("rewritten snapshot has no session_op_seconds{op=\"replay\"} observation")
	}
}
