// Command p4triage turns a fuzz-campaign corpus into structured
// analytics. It is a thin shim over the same repro.Session surface as
// `p4fuzz triage`: every persisted finding gets an AST shape fingerprint,
// findings are clustered by (verdict class, cited typing rule, shape),
// and the clusters are printed ranked by size with exemplar programs,
// gen-vs-mutant origin mix, discovery-time brackets, NI budgets at
// detection, and the corpus's seed-novelty ranking.
//
// Usage:
//
//	p4triage [-corpus DIR] [-json] [-novelty N] [-o FILE]
//	p4triage -diff OLD.json NEW.json [-md] [-o FILE]
//
// -corpus names the corpus directory (default testdata/regression-corpus,
// the checked-in regression seeds). -json emits the report as JSON
// instead of text — the form the nightly campaign workflow uploads as an
// artifact. -novelty caps the seed-productivity ranking (-1 = unlimited).
// -o writes the report to a file instead of stdout.
//
// -diff compares two JSON reports (the artifact form) as a time series:
// clusters present only in NEW are new defect classes, grown ones are
// more of a known class, gone ones emptied out. When the new report's
// corpus has a persisted metrics.json (p4fuzzd writes one per fleet
// run), the diff also prints a one-line fleet summary — windows done,
// lease reclaims, merged findings per worker. -md renders the diff as a
// GitHub-flavored Markdown fragment — the form the nightly workflow
// appends to its job summary.
//
// Exit status 0 when every corpus entry triaged cleanly (for -diff:
// always, unless inputs are unreadable), 1 when any entry is malformed
// (unreadable finding pair, metadata that is not a finding's, a program
// the current frontend cannot parse) — so a CI gate over a checked-in
// corpus fails the moment its metadata rots — and 2 on usage or I/O
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	corpusDir := flag.String("corpus", "testdata/regression-corpus", "corpus directory to triage")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	novelty := flag.Int("novelty", 10, "max seeds in the novelty ranking (-1 = unlimited)")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	diff := flag.Bool("diff", false, "diff mode: compare two JSON reports (old, new) given as arguments")
	md := flag.Bool("md", false, "with -diff, render the diff as Markdown (for CI job summaries)")
	flag.Parse()

	if *diff {
		os.Exit(diffMain(flag.Args(), *md, *outPath))
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4triage: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	s, err := repro.NewSession(
		repro.WithCorpus(*corpusDir),
		repro.WithMaxNovelty(*novelty),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
		os.Exit(2)
	}
	defer s.Close()
	rep, err := s.Triage()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
		os.Exit(2)
	}

	var out []byte
	if *asJSON {
		if out, err = repro.MarshalTriageReport(rep); err != nil {
			fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
			os.Exit(2)
		}
	} else {
		out = []byte(repro.FormatTriageReport(rep))
	}
	if err := emit(*outPath, out); err != nil {
		fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
		os.Exit(2)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// diffMain loads two JSON triage reports and prints their cluster-level
// diff.
func diffMain(args []string, md bool, outPath string) int {
	if len(args) != 2 {
		fmt.Fprintf(os.Stderr, "p4triage: -diff wants exactly two report files (old.json new.json), got %d\n", len(args))
		return 2
	}
	reports := make([]*repro.TriageReport, 2)
	for i, path := range args {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
			return 2
		}
		if reports[i], err = repro.UnmarshalTriageReport(raw); err != nil {
			fmt.Fprintf(os.Stderr, "p4triage: %s: %v\n", path, err)
			return 2
		}
	}
	d := repro.DiffTriageReports(reports[0], reports[1])
	var out string
	if md {
		out = repro.MarkdownTriageDiff(d)
	} else {
		out = repro.FormatTriageDiff(d)
	}
	if err := emit(outPath, []byte(out)); err != nil {
		fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
		return 2
	}
	return 0
}

// emit writes out to path, or stdout when path is empty.
func emit(path string, out []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
