// Command p4triage turns a fuzz-campaign corpus into structured
// analytics: every persisted finding gets an AST shape fingerprint (a
// canonical skeleton hash that abstracts identifiers and literals but
// keeps statement structure, label positions, and operator type-classes),
// findings are clustered by (verdict class, cited typing rule, shape),
// and the clusters are printed ranked by size with exemplar programs,
// gen-vs-mutant origin mix, discovery-time brackets, NI budgets at
// detection, and the corpus's seed-novelty ranking.
//
// Usage:
//
//	p4triage [-corpus DIR] [-json] [-novelty N] [-o FILE]
//
// -corpus names the corpus directory (default testdata/regression-corpus,
// the checked-in regression seeds). -json emits the report as JSON
// instead of text — the form the nightly campaign workflow uploads as an
// artifact. -novelty caps the seed-productivity ranking (-1 = unlimited).
// -o writes the report to a file instead of stdout.
//
// Exit status 0 when every corpus entry triaged cleanly, 1 when any
// entry is malformed (unreadable finding pair, metadata that is not a
// finding's, a program the current frontend cannot parse) — so a CI gate
// over a checked-in corpus fails the moment its metadata rots — and 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	corpusDir := flag.String("corpus", "testdata/regression-corpus", "corpus directory to triage")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	novelty := flag.Int("novelty", 10, "max seeds in the novelty ranking (-1 = unlimited)")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4triage: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	rep, err := repro.Triage(repro.TriageConfig{CorpusDir: *corpusDir, MaxNovelty: *novelty})
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
		os.Exit(2)
	}

	var out []byte
	if *asJSON {
		if out, err = repro.MarshalTriageReport(rep); err != nil {
			fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
			os.Exit(2)
		}
	} else {
		out = []byte(repro.FormatTriageReport(rep))
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p4triage: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(out)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
