// Command p4run interprets a P4 program against a control-plane
// configuration, printing the final parameter state as JSON.
//
// Usage:
//
//	p4run [-config run.json] [-check] file.p4
//
// The configuration file (see internal/config) supplies table entries and
// initial parameter values; without one the program runs on zero-valued
// inputs with every table missing. With -check the program is first
// typechecked with P4BID (two-point lattice) and the run is refused if it
// is insecure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/config"
	"repro/internal/eval"
)

func main() {
	cfgPath := flag.String("config", "", "JSON run configuration (tables + inputs)")
	check := flag.Bool("check", false, "refuse to run programs rejected by the P4BID checker")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4run [flags] file.p4\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *cfgPath, *check); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(file, cfgPath string, check bool) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	prog, err := repro.Parse(file, string(src))
	if err != nil {
		return err
	}
	if check {
		if res := repro.Check(prog, repro.TwoPoint()); !res.OK {
			return fmt.Errorf("refusing to run: program is insecure:\n%v", res.Err())
		}
	}
	cfg := &config.Config{}
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		cfg, err = config.Parse(data)
		if err != nil {
			return err
		}
	}
	in, err := eval.New(prog, nil)
	if err != nil {
		return err
	}
	if err := cfg.Install(in); err != nil {
		return err
	}
	inputs, err := cfg.BuildInputs(in)
	if err != nil {
		return err
	}
	out, sig, err := in.RunControl(cfg.Control, inputs)
	if err != nil {
		return err
	}
	result := map[string]any{"signal": sig.String()}
	params := map[string]any{}
	for name, v := range out {
		params[name] = config.EncodeValue(v)
	}
	result["outputs"] = params
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}
