// Command p4fuzzd runs the work-leasing campaign fleet: one coordinator
// that owns a span of global campaign indices and any number of workers
// that lease index windows from it, run them as stride-1 campaigns into
// private staging corpora, and hand the findings back for merging. The
// whole protocol is files under <corpus>/fleet/ (see internal/fleet), so
// the fleet needs no network — workers on any machine sharing the corpus
// directory can join.
//
// Usage:
//
//	p4fuzzd -corpus-dir DIR [-n 1000] [-window 0] [-workers 0]
//	        [-seed 1] [-depth 3] [-stmts 5] [-fields 3] [-lattice SPEC]
//	        [-trials 4] [-trials-max 32] [-mutate] [-mutate-frac F]
//	        [-minimize] [-max-per-class 25] [-lease-ttl 1m] [-poll 0]
//	        [-pool 0] [-timeout 0] [-events] [-events-json] [-http ADDR]
//	p4fuzzd -work -corpus-dir DIR [-worker-id ID] [-pool 0] [-poll 0]
//	        [-events] [-events-json] [-http ADDR]
//
// The first form is the coordinator. It opens (or, after a crash, adopts)
// the fleet manifest for the next -n indices after the corpus's frontier,
// spawns -workers local worker processes (0 = none; external workers
// join by running the second form against the same corpus dir), merges
// each completed window's findings into the main corpus, and reclaims
// the leases of workers whose heartbeats go stale — a killed worker
// costs one window's re-run, not the campaign. When the span is covered
// the frontier advances, so consecutive p4fuzzd runs explore consecutive
// spans.
//
// The second form is one worker. Every campaign parameter comes from the
// manifest (workers poll for it, so they may start first); the flags
// cover only identity and local capacity. A worker's staging corpus is
// keyed by -worker-id, so a restarted worker reusing its id also reuses
// its dedup memory.
//
// Local workers are spawned with -events-json and their stdout streams
// are ingested: each line is decoded and re-emitted on the coordinator's
// own stream, already stamped with the worker's id. -events renders that
// merged stream as text on stderr; -events-json emits it as one JSON
// object per line on stdout (repro.Event marshalled verbatim — the same
// contract as p4fuzz -events-json) and moves the final report to stderr.
//
// -http ADDR serves live introspection while the run is up: /metrics
// (Prometheus text), /metrics.json (the same snapshot as JSON), /healthz
// (fleet liveness — 200 while the manifest is open and the coordinator's
// scan loop is fresh, 503 otherwise), and the standard /debug/pprof/
// endpoints. ADDR may be ":0" to pick a free port; the bound address is
// printed to stderr. The coordinator's view merges its own registry with
// the per-window snapshots workers ship on their event streams, and the
// merged snapshot is also persisted to <corpus>/metrics.json when the
// run ends. In -work mode the endpoints expose that worker alone, and
// /healthz only reflects the shared protocol files (manifest, frontier),
// not coordinator liveness.
//
// Exit status 0 when the span completes, 1 on an aborted or failed run,
// 2 on usage errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("p4fuzzd", flag.ExitOnError)
	workMode := fs.Bool("work", false, "run as a fleet worker instead of the coordinator")
	corpusDir := fs.String("corpus-dir", "", "main corpus directory; the fleet protocol lives under <dir>/fleet (required)")
	workerID := fs.String("worker-id", "", "worker identity for -work mode (default host-pid; also names the staging corpus)")
	pool := fs.Int("pool", 0, "per-worker analysis pipeline size (0 = GOMAXPROCS)")
	poll := fs.Duration("poll", 0, "coordinator scan / worker retry interval (0 = protocol default)")
	n := fs.Int64("n", 1000, "global indices this fleet run covers, starting at the corpus frontier")
	window := fs.Int64("window", 0, "lease window size in indices (0 = n/8)")
	workers := fs.Int("workers", 0, "local worker processes to spawn (0 = none; external -work processes join)")
	seed := fs.Int64("seed", 1, "base generation seed (program i uses seed+i, fleet-wide)")
	depth := fs.Int("depth", 3, "max conditional nesting in generated programs")
	stmts := fs.Int("stmts", 5, "max statements per generated block")
	fields := fs.Int("fields", 3, "low/high header fields in generated programs")
	latSpec := fs.String("lattice", "", "campaign lattice: two-point (default), diamond, chain:N, nparty:N, powerset:N, or product:a,b")
	trials := fs.Int("trials", 0, "base NI trials per program (0 = campaign default)")
	trialsMax := fs.Int("trials-max", 0, "adaptive NI ceiling for rejected programs (0 = campaign default)")
	niOracle := fs.String("ni-oracle", "", "NI backend, manifest-wide: adaptive (default), randomized, or exhaustive")
	exhaustBudget := fs.Uint64("exhaust-budget", 0, "exhaustive oracle: assignment ceiling per observer (0 = 2^16)")
	exhaustProbes := fs.Int("exhaust-probes", 0, "exhaustive oracle: public-input probes when only the secret space fits (0 = derived)")
	mutate := fs.Bool("mutate", false, "mutate staged corpus findings for half of each worker's jobs")
	mutateFrac := fs.Float64("mutate-frac", 0, "fraction of jobs mutated under -mutate (0 = 0.5)")
	minimize := fs.Bool("minimize", false, "shrink findings to minimal reproducers before persisting")
	maxPerClass := fs.Int("max-per-class", 0, "findings processed per class per window (0 = campaign default, negative = unlimited)")
	leaseTTL := fs.Duration("lease-ttl", time.Minute, "reclaim a window when its lease heartbeat is staler than this")
	timeout := fs.Duration("timeout", 0, "overall run timeout (0 = none)")
	liveEvents := fs.Bool("events", false, "render the merged event stream as text on stderr")
	jsonEvents := fs.Bool("events-json", false, "emit the merged event stream as one JSON object per line on stdout (the report moves to stderr)")
	httpAddr := fs.String("http", "", "serve /metrics, /metrics.json, /healthz, and /debug/pprof on this address (\":0\" = free port; \"\" = off)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4fuzzd: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *corpusDir == "" {
		fmt.Fprintln(os.Stderr, "p4fuzzd: -corpus-dir is required (the fleet protocol lives under it)")
		return 2
	}

	// SIGINT/SIGTERM cancel the run cleanly: the coordinator leaves the
	// manifest for a successor to adopt, workers leave their leases to
	// expire — exactly the crash-shaped exits the protocol is built for.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sink, reportOut := makeSink(*liveEvents, *jsonEvents)

	// Every mode owns a registry; the coordinator additionally merges the
	// snapshots its local workers ship over their event streams into a
	// View, so /metrics shows the whole fleet, worker-labeled.
	reg := metrics.NewRegistry()
	view := metrics.NewView(reg)
	if *httpAddr != "" {
		bound, err := serveHTTP(*httpAddr, *corpusDir, view, reg, *leaseTTL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzzd: -http %s: %v\n", *httpAddr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "p4fuzzd: serving /metrics /metrics.json /healthz /debug/pprof on http://%s\n", bound)
	}

	if *workMode {
		rep, err := fleet.RunWorker(ctx, *corpusDir, fleet.WorkerOptions{
			WorkerID: *workerID,
			Workers:  *pool,
			Poll:     *poll,
			Log:      os.Stderr,
			Events:   sink,
			Metrics:  reg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzzd: worker %s: %v\n", rep.WorkerID, err)
			return 1
		}
		fmt.Fprintf(reportOut, "worker %s: %d windows, %d analyzed, %d new findings\n",
			rep.WorkerID, rep.Windows, rep.Analyzed, rep.NewFindings)
		return 0
	}

	gcfg := gen.Config{
		MaxDepth:    *depth,
		MaxStmts:    *stmts,
		NumFields:   *fields,
		WithActions: true,
		Lattice:     *latSpec,
	}
	if err := gcfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzzd: %v\n", err)
		return 2
	}

	// Local workers are separate processes on purpose: the churn story —
	// kill -9 a worker, watch its window get reclaimed — only means
	// something if a worker's death cannot take the coordinator with it.
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		if err := spawnWorker(ctx, &wg, *corpusDir, fmt.Sprintf("local-%d", i), *pool, sink, view); err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzzd: %v\n", err)
			return 2
		}
	}

	if !pipeline.ValidOracle(*niOracle) {
		fmt.Fprintf(os.Stderr, "p4fuzzd: unknown NI oracle %q (want adaptive, randomized, or exhaustive)\n", *niOracle)
		return 2
	}

	rep, err := fleet.RunCoordinator(ctx, fleet.Config{
		CorpusDir:     *corpusDir,
		N:             *n,
		WindowSize:    *window,
		Seed:          *seed,
		Gen:           gcfg,
		NITrials:      *trials,
		NITrialsMax:   *trialsMax,
		NIOracle:      *niOracle,
		ExhaustBudget: *exhaustBudget,
		ExhaustProbes: *exhaustProbes,
		Mutate:        *mutate,
		MutateFrac:    *mutateFrac,
		Minimize:      *minimize,
		MaxPerClass:   *maxPerClass,
		LeaseTTL:      *leaseTTL,
		Poll:          *poll,
		Log:           os.Stderr,
		Events:        sink,
		Metrics:       reg,
	})
	// Workers exit on their own once the manifest is retired (success) or
	// their context dies (cancellation); wait so their final events land.
	wg.Wait()
	// Persist the fleet-merged telemetry next to the corpus: the
	// coordinator's own series plus every worker's last shipped snapshot,
	// overlaid on whatever series other processes already left there.
	if werr := metrics.UpdateFile(filepath.Join(*corpusDir, "metrics.json"), view.Snapshot()); werr != nil {
		fmt.Fprintf(os.Stderr, "p4fuzzd: metrics.json: %v\n", werr)
	}
	if rep != nil {
		fmt.Fprintf(reportOut, "fleet: span [%d, %d) in %d windows of %d: %d merged, %d known, %d leases reclaimed, %v\n",
			rep.Lo, rep.Hi, rep.Windows, rep.WindowSize, rep.Merged, rep.Known, rep.Reclaimed, rep.Elapsed.Round(time.Millisecond))
		for worker, n := range rep.WindowsByWorker {
			fmt.Fprintf(reportOut, "  %s: %d windows\n", worker, n)
		}
		for _, e := range rep.Errors {
			fmt.Fprintf(reportOut, "  merge error: %s\n", e)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzzd: %v\n", err)
		return 1
	}
	if len(rep.Errors) > 0 {
		return 1
	}
	return 0
}

// serveHTTP binds addr and serves the introspection surface in the
// background for the life of the process: /metrics and /metrics.json
// from the merged view, /healthz from the registry's coordinator gauges
// plus the on-disk protocol files, and net/http/pprof on its usual
// paths. It returns the bound address so ":0" is usable in scripts.
func serveHTTP(addr, corpusDir string, view *metrics.View, reg *metrics.Registry, leaseTTL time.Duration) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.ExpositionHandler(view.Snapshot))
	mux.Handle("/metrics.json", metrics.JSONHandler(view.Snapshot))
	mux.Handle("/healthz", &fleet.HealthChecker{
		CorpusDir: corpusDir,
		Metrics:   reg,
		// The scan loop ticks at least once per poll interval, which is
		// far below the lease TTL — so a scan older than the TTL means
		// the coordinator is wedged, not merely slow.
		MaxScanAge: leaseTTL,
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// makeSink builds the process's event sink — text to stderr, JSON lines
// to stdout, or discard — and picks where the final report goes (stderr
// when stdout is the JSON stream).
func makeSink(text, asJSON bool) (events.Sink, *os.File) {
	switch {
	case asJSON:
		var mu sync.Mutex
		enc := json.NewEncoder(os.Stdout)
		return func(e events.Event) {
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(e)
		}, os.Stderr
	case text:
		var mu sync.Mutex
		return func(e events.Event) {
			if line := e.Text(); line != "" {
				mu.Lock()
				defer mu.Unlock()
				fmt.Fprintln(os.Stderr, line)
			}
		}, os.Stdout
	default:
		return nil, os.Stdout
	}
}

// spawnWorker re-execs this binary in -work mode and ingests its event
// stream: the worker writes one JSON event per stdout line, the
// coordinator decodes each and re-emits it on its own sink, and any
// KindMetrics event's snapshot is absorbed into the coordinator's merged
// view — that stream is the only channel a worker's telemetry travels
// over. Lines that do not decode (a stray print, a truncated crash line)
// pass through to stderr rather than being lost.
func spawnWorker(ctx context.Context, wg *sync.WaitGroup, corpusDir, id string, pool int, sink events.Sink, view *metrics.View) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("spawn %s: %w", id, err)
	}
	cmd := exec.CommandContext(ctx, exe,
		"-work",
		"-corpus-dir", corpusDir,
		"-worker-id", id,
		"-pool", fmt.Sprint(pool),
		"-events-json",
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("spawn %s: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn %s: %w", id, err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(out)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			var probe struct {
				Kind string `json:"kind"`
			}
			if json.Unmarshal(line, &probe) == nil && probe.Kind != "" {
				var e events.Event
				if json.Unmarshal(line, &e) == nil {
					if e.Kind == events.KindMetrics && e.Snapshot != nil {
						view.Absorb(e.Worker, *e.Snapshot)
					}
					sink.Emit(e)
					continue
				}
			}
			fmt.Fprintf(os.Stderr, "[%s] %s\n", id, line)
		}
		cmd.Wait()
	}()
	return nil
}
