// Command p4fuzz runs differential soundness-fuzzing against the P4BID
// checker: it generates random programs, cross-checks the IFC checker
// against the baseline checker and the non-interference harness, and
// prints a verdict table.
//
// Usage:
//
//	p4fuzz [-n 1000] [-seed 1] [-trials 8] [-trials-max 0] [-workers 0]
//	       [-depth 3] [-stmts 5] [-fields 3] [-timeout 0]
//	       [-lattice two-point|diamond|chain:N|nparty:N|powerset:N]
//	       [-corpus-dir DIR] [-minimize] [-shard i/n] [-resume] [-mutate]
//	       [-triage]
//	p4fuzz -replay DIR [-trials 4] [-trials-max 32]
//	p4fuzz -retire DIR [-promote-dir DIR] [-trials 4] [-trials-max 32]
//
// With none of the campaign flags, p4fuzz is the one-shot harness: the
// whole corpus is generated up front, checked, and forgotten. Any of
// -corpus-dir, -minimize, -shard, -resume, or -mutate switches to the
// streaming campaign engine, which generates jobs lazily, deduplicates and
// persists interesting programs (with verdict metadata) under -corpus-dir,
// minimizes findings with -minimize, splits the campaign across processes
// with -shard i/n (0-based; shard corpus dirs merge by file copy), and
// continues from the persisted per-shard cursor with -resume.
//
// -lattice selects the campaign lattice in either mode: generated programs
// are annotated against it and checked under it, so chain:N, nparty:N, and
// powerset:N campaigns exercise label flows two-point programs cannot
// express (powerset elements spell label-safely as p_a_b, so they work
// in source annotations; brace forms remain programmatic Lookup aliases).
// -mutate closes the coverage-guided loop: half the jobs become AST-level
// mutants of persisted corpus findings (seed pool weighted by verdict
// class and recency) instead of fresh gen.Random samples.
//
// -triage prints the corpus's ranked triage summary (finding clusters by
// verdict class, cited rule, and AST shape fingerprint — see p4triage for
// the full report) after the campaign, so a nightly log ends with what
// the corpus *means*, not just how much it grew.
//
// -replay DIR re-checks every finding persisted under DIR against the
// current checker stack and exits 1 on any verdict drift — the corpus as a
// regression suite. Findings recorded with their NI budget replay under
// it; older corpora use the -trials/-trials-max defaults.
//
// -retire DIR is the corpus hygiene pass: findings whose recorded defect
// the current stack no longer reproduces (replay drift from a deliberate
// fix) are first promoted into -promote-dir as a retired regression
// corpus — re-recorded under their current classification, so the fix
// stays guarded — and then removed from the live corpus. Exit 1 if any
// entry could not be processed.
//
// -trials is the per-program NI budget; when -trials-max exceeds it, the
// budget is adaptive — accepted programs get -trials, rejected programs
// escalate toward -trials-max until a witness appears. The campaign
// defaults to an adaptive 4/32 split where the one-shot harness keeps the
// flat 8.
//
// Exit status 0 if the run found no implementation defects (no
// IFC-accepted program interfered, no generated program failed to parse or
// base-check, no runtime errors, no parser roundtrip disagreements),
// 1 on any defect or an aborted run, 2 on usage errors. Every finding is
// reported with its per-program generation seed, so a failure replays with
// p4fuzz -n 1 -seed <that seed> — passing the same -depth/-stmts/-fields
// flags as the original campaign (the seed only determines the program for
// a fixed generator configuration; reports and corpus metadata echo it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	n := flag.Int("n", 1000, "number of programs to generate and cross-check")
	seed := flag.Int64("seed", 1, "base generation seed (program i uses seed+i)")
	trials := flag.Int("trials", 0, "base NI trials per program (0 = 8 one-shot, 4 campaign)")
	trialsMax := flag.Int("trials-max", 0, "adaptive NI ceiling for rejected programs (0 = campaign default, <0 or <= -trials disables)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	depth := flag.Int("depth", 3, "max conditional nesting in generated programs")
	stmts := flag.Int("stmts", 5, "max statements per generated block")
	fields := flag.Int("fields", 3, "low/high header fields in generated programs")
	timeout := flag.Duration("timeout", 0, "overall campaign timeout (0 = none)")
	latSpec := flag.String("lattice", "", "campaign lattice: two-point (default), diamond, chain:N, nparty:N, or powerset:N")
	corpusDir := flag.String("corpus-dir", "", "persistent corpus directory (enables the campaign engine)")
	minimize := flag.Bool("minimize", false, "shrink findings to minimal reproducers before persisting")
	shard := flag.String("shard", "", "shard assignment i/n (0-based), e.g. 0/4")
	resume := flag.Bool("resume", false, "continue from the corpus's per-shard cursor")
	mutateSeeds := flag.Bool("mutate", false, "mutate persisted corpus findings for half the jobs (coverage-guided loop)")
	triageAfter := flag.Bool("triage", false, "print the corpus's triage cluster summary after the campaign (requires -corpus-dir)")
	replayDir := flag.String("replay", "", "replay mode: re-check every finding under this corpus dir and exit 1 on verdict drift")
	retireDir := flag.String("retire", "", "retire mode: promote replay-drifted findings under this corpus dir to -promote-dir, then remove them")
	promoteDir := flag.String("promote-dir", "", "retired-corpus directory for -retire (default <corpus>/../retired-corpus)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *retireDir != "" {
		rep, err := repro.Retire(ctx, repro.RetireConfig{
			CorpusDir:   *retireDir,
			PromoteDir:  *promoteDir,
			NITrials:    *trials,
			NITrialsMax: *trialsMax,
			Log:         os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: retire: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(repro.FormatRetireReport(rep))
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *replayDir != "" {
		rep, err := repro.Replay(ctx, repro.ReplayConfig{
			CorpusDir:   *replayDir,
			NITrials:    *trials,
			NITrialsMax: *trialsMax,
			Log:         os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: replay: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(repro.FormatReplayReport(rep))
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	gcfg := gen.Config{
		MaxDepth:    *depth,
		MaxStmts:    *stmts,
		NumFields:   *fields,
		WithActions: true,
		Lattice:     *latSpec,
	}
	if err := gcfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		os.Exit(2)
	}

	campaignMode := *corpusDir != "" || *minimize || *shard != "" || *resume || *mutateSeeds || *triageAfter
	if *triageAfter && *corpusDir == "" {
		fmt.Fprintln(os.Stderr, "p4fuzz: -triage needs -corpus-dir (triage reads the persisted corpus)")
		os.Exit(2)
	}
	if !campaignMode {
		t := *trials
		if t == 0 {
			t = 8
		}
		rep, err := repro.DiffFuzz(ctx, repro.FuzzConfig{
			N:           *n,
			Seed:        *seed,
			NITrials:    t,
			NITrialsMax: *trialsMax,
			Workers:     *workers,
			Gen:         gcfg,
		})
		if rep == nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: campaign aborted after %v: %v\n", rep.Elapsed.Round(time.Millisecond), err)
		}
		fmt.Print(repro.FormatFuzzReport(rep))
		if !rep.OK() || err != nil {
			os.Exit(1)
		}
		return
	}

	shardIdx, numShards := 0, 1
	if *shard != "" {
		// Strict parse: Sscanf would accept trailing garbage ("0/2x") and
		// silently fuzz the wrong partition.
		i, n, ok := strings.Cut(*shard, "/")
		var err1, err2 error
		if ok {
			shardIdx, err1 = strconv.Atoi(i)
			numShards, err2 = strconv.Atoi(n)
		}
		if !ok || err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: -shard wants i/n (e.g. 0/4), got %q\n", *shard)
			os.Exit(2)
		}
	}
	rep, err := repro.Campaign(ctx, repro.CampaignConfig{
		N:           *n,
		Seed:        *seed,
		Gen:         gcfg,
		NITrials:    *trials,
		NITrialsMax: *trialsMax,
		Workers:     *workers,
		Shard:       shardIdx,
		NumShards:   numShards,
		Mutate:      *mutateSeeds,
		CorpusDir:   *corpusDir,
		Resume:      *resume,
		Minimize:    *minimize,
		Log:         os.Stderr,
	})
	if rep == nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: campaign aborted after %v: %v\n", rep.Elapsed.Round(time.Millisecond), err)
	}
	fmt.Print(repro.FormatCampaignReport(rep))
	triageClean := true
	if *triageAfter {
		// The summary covers the whole corpus the campaign just grew, so
		// the nightly log ends with what the findings mean: the ranked
		// (class, rule, shape) clusters and the seed-novelty standings.
		trep, terr := repro.Triage(repro.TriageConfig{CorpusDir: *corpusDir})
		if terr != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", terr)
			os.Exit(2)
		}
		fmt.Println()
		fmt.Print(repro.FormatTriageReport(trep))
		// A malformed corpus entry fails the run just as it fails
		// p4triage: a green job must mean the corpus is trustworthy.
		triageClean = trep.OK()
	}
	if !rep.OK() || !triageClean || err != nil {
		os.Exit(1)
	}
}
