// Command p4fuzz runs the campaign stack: differential soundness-fuzzing
// against the P4BID checker, corpus replay, triage, and corpus hygiene,
// all over one persistent finding corpus through the repro.Session API.
//
// Usage:
//
//	p4fuzz run    [-n 1000] [-seed 1] [-trials N] [-trials-max N]
//	              [-workers 0] [-depth 3] [-stmts 5] [-fields 3]
//	              [-timeout 0] [-lattice SPEC] [-corpus-dir DIR]
//	              [-minimize] [-shard i/n] [-resume] [-mutate] [-triage]
//	              [-events] [-events-json]
//	p4fuzz replay [-trials 4] [-trials-max 32] [-events] [-events-json]
//	              [DIR]
//	p4fuzz triage [-json] [-novelty N] [-o FILE] [-events] [-events-json]
//	              [DIR]
//	p4fuzz retire [-promote-dir DIR] [-trials 4] [-trials-max 32]
//	              [-events] [-events-json] [DIR]
//	p4fuzz compact [-trials 4] [-trials-max 32] [-events] [-events-json]
//	              DIR
//	p4fuzz index  [-o FILE] [DIR]
//
// The pre-subcommand flag spellings (p4fuzz -corpus-dir ... -mutate,
// p4fuzz -replay DIR, p4fuzz -retire DIR, p4fuzz -triage) keep working
// unchanged and produce byte-identical reports — both forms run the same
// Session underneath.
//
// # run
//
// With none of the campaign flags, run is the one-shot harness: the whole
// corpus is generated up front, checked, and forgotten. Any of
// -corpus-dir, -minimize, -shard, -resume, or -mutate switches to the
// streaming campaign engine, which generates jobs lazily, deduplicates and
// persists interesting programs (with verdict metadata) under -corpus-dir,
// minimizes findings with -minimize, splits the campaign across processes
// with -shard i/n (0-based; shard corpus dirs merge by file copy), and
// continues from the persisted per-shard cursor with -resume.
//
// -lattice selects the campaign lattice in either mode: two-point
// (default), diamond, chain:N, nparty:N, powerset:N, or product:a,b
// (components themselves specs, e.g. product:two-point,diamond).
// Generated programs are annotated against it and checked under it, so
// taller and wider lattices exercise label flows two-point programs cannot
// express; powerset and product elements spell label-safely (p_a_b,
// x_low_high), so they work in source annotations. -mutate closes the
// coverage-guided loop: half the jobs become AST-level mutants of
// persisted corpus findings (seed pool weighted by verdict class,
// recency, novelty, and triage-cluster saturation). -triage appends the
// corpus's ranked cluster summary after the campaign.
//
// -events streams structured progress to stderr while any subcommand
// runs: op-start/op-end framing around every operation, coarse progress
// ticks and drift/cluster/retired lines as they happen, one finding line
// per new finding as the post-analysis phase minimizes and persists it,
// and a warning line with the drop count when a slow listener forced the
// stream to shed events — the live view CI logs tail, where the final
// report is the summary. -events-json emits the same stream as one JSON
// object per line on stdout (repro.Event marshalled verbatim, the form
// fleet coordinators and jq pipelines consume); the report then prints
// to stderr so stdout stays machine-parseable. In one-shot mode the
// stream is batched at classification time rather than live.
//
// Every operation also leaves its telemetry behind: progress ticks carry
// jobs/sec and findings/sec, periodic metrics events ship full registry
// snapshots on the stream, and when -corpus-dir is set a metrics.json
// snapshot (job counters, per-stage pipeline timings, op-duration
// histograms) is rewritten atomically next to the corpus at op-end — the
// artifact CI's jq gate validates. Live endpoints are p4fuzzd's job: see
// `p4fuzzd -http`.
//
// # replay, retire
//
// replay re-checks every finding persisted under DIR (default
// testdata/regression-corpus) against the current checker stack and exits
// 1 on any verdict drift — the corpus as a regression suite. retire is
// the corpus hygiene pass: findings whose recorded defect the current
// stack no longer reproduces are first promoted into -promote-dir as a
// retired regression corpus — re-recorded under their current
// classification, so the fix stays guarded — and then removed from the
// live corpus; exit 1 if any entry could not be processed.
//
// # compact, index
//
// compact re-minimizes every finding under DIR with the current shrinker
// and folds newly-equal dedup keys together: entries whose minimized form
// matches an existing finding collapse onto it, strictly smaller forms
// replace their originals (promote-first, so no finding is lost
// mid-compaction), and drifted entries are left for retire. Like retire
// it demands an explicit DIR — it rewrites corpus entries. Exit 1 if any
// entry could not be processed.
//
// index opens DIR — rebuilding and persisting its findings/index.json
// when missing or stale — and prints the corpus statistics as JSON. The
// stats derive from the index alone, so CI uses it as a round-trip gate:
// delete the index, rebuild, and the stats must be byte-identical.
//
// # triage
//
// triage prints the corpus's ranked cluster table (findings grouped by
// verdict class, cited typing rule, and AST shape fingerprint) as text or
// JSON (-json), optionally to a file (-o). Exit 1 when any corpus entry
// is malformed. cmd/p4triage is a thin alias of this subcommand that
// additionally diffs two reports (-diff).
//
// -trials is the per-program NI budget; when -trials-max exceeds it, the
// budget is adaptive — accepted programs get -trials, rejected programs
// escalate toward -trials-max until a witness appears. The campaign
// defaults to an adaptive 4/32 split where the one-shot harness keeps the
// flat 8.
//
// Exit status 0 if the operation found no defects, 1 on any defect,
// drift, malformed corpus entry, or aborted run, 2 on usage errors.
// Every finding is reported with its per-program generation seed, so a
// failure replays with p4fuzz run -n 1 -seed <that seed> — passing the
// same -depth/-stmts/-fields flags as the original campaign.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "run":
			os.Exit(runMain(args[1:]))
		case "replay":
			os.Exit(replayMain(args[1:]))
		case "triage":
			os.Exit(triageMain(args[1:]))
		case "retire":
			os.Exit(retireMain(args[1:]))
		case "compact":
			os.Exit(compactMain(args[1:]))
		case "index":
			os.Exit(indexMain(args[1:]))
		}
	}
	// Legacy flag form: p4fuzz -corpus-dir ... / -replay DIR / -retire DIR.
	// Same parser, same Session, byte-identical reports.
	os.Exit(runMain(args))
}

// eventMode is how a subcommand streams its session's events: not at
// all, rendered as text lines on stderr (-events), or as one JSON object
// per line on stdout (-events-json; the report moves to stderr so stdout
// stays machine-parseable).
type eventMode int

const (
	eventsOff eventMode = iota
	eventsText
	eventsJSON
)

func pickEventMode(text, asJSON bool) eventMode {
	if asJSON {
		return eventsJSON
	}
	if text {
		return eventsText
	}
	return eventsOff
}

// reportWriter is where a subcommand's final report goes: stdout
// normally, stderr when stdout is the -events-json stream.
func (m eventMode) reportWriter() *os.File {
	if m == eventsJSON {
		return os.Stderr
	}
	return os.Stdout
}

// watchEvents starts the live event renderer when a mode is selected.
// The returned stop function closes the session's stream and waits for
// the renderer to drain, so every event of the finished operation —
// including the op-end framing — is rendered before the report prints.
func watchEvents(s *repro.Session, mode eventMode) (stop func()) {
	if mode == eventsOff {
		return func() { s.Close() }
	}
	ch := s.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if mode == eventsJSON {
			enc := json.NewEncoder(os.Stdout)
			for ev := range ch {
				// repro.Event marshalled verbatim, one object per line —
				// the contract CI's jq gate and fleet coordinators parse.
				enc.Encode(ev)
			}
			return
		}
		for ev := range ch {
			// Event.Text is the shared one-line rendering; job-done events
			// have none (too chatty at campaign rates) and are skipped.
			if line := ev.Text(); line != "" {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() {
		s.Close()
		<-done
	}
}

// corpusArg resolves a subcommand's corpus directory: the positional
// argument if given, else the flag/default. More than one positional is a
// usage error.
func corpusArg(fs *flag.FlagSet, def string) (string, bool) {
	switch fs.NArg() {
	case 0:
		return def, true
	case 1:
		return fs.Arg(0), true
	default:
		fmt.Fprintf(os.Stderr, "p4fuzz: unexpected arguments %v\n", fs.Args()[1:])
		return "", false
	}
}

func runMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz run", flag.ExitOnError)
	n := fs.Int("n", 1000, "number of programs to generate and cross-check")
	seed := fs.Int64("seed", 1, "base generation seed (program i uses seed+i)")
	trials := fs.Int("trials", 0, "base NI trials per program (0 = 8 one-shot, 4 campaign)")
	trialsMax := fs.Int("trials-max", 0, "adaptive NI ceiling for rejected programs (0 = campaign default, <0 or <= -trials disables)")
	niOracle := fs.String("ni-oracle", "", "NI backend: adaptive (default), randomized, or exhaustive (proof-grade verdicts within -exhaust-budget)")
	exhaustBudget := fs.Uint64("exhaust-budget", 0, "exhaustive oracle: assignment ceiling per observer (0 = 2^16)")
	exhaustProbes := fs.Int("exhaust-probes", 0, "exhaustive oracle: public-input probes when only the secret space fits (0 = derived)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	depth := fs.Int("depth", 3, "max conditional nesting in generated programs")
	stmts := fs.Int("stmts", 5, "max statements per generated block")
	fields := fs.Int("fields", 3, "low/high header fields in generated programs")
	timeout := fs.Duration("timeout", 0, "overall campaign timeout (0 = none)")
	latSpec := fs.String("lattice", "", "campaign lattice: two-point (default), diamond, chain:N, nparty:N, powerset:N, or product:a,b")
	corpusDir := fs.String("corpus-dir", "", "persistent corpus directory (enables the campaign engine)")
	minimize := fs.Bool("minimize", false, "shrink findings to minimal reproducers before persisting")
	shard := fs.String("shard", "", "shard assignment i/n (0-based), e.g. 0/4")
	resume := fs.Bool("resume", false, "continue from the corpus's per-shard cursor")
	mutateSeeds := fs.Bool("mutate", false, "mutate persisted corpus findings for half the jobs (coverage-guided loop)")
	triageAfter := fs.Bool("triage", false, "print the corpus's triage cluster summary after the campaign (requires -corpus-dir)")
	liveEvents := fs.Bool("events", false, "stream structured progress events to stderr while running")
	jsonEvents := fs.Bool("events-json", false, "stream events to stdout as one JSON object per line (the report moves to stderr)")
	// Legacy mode spellings, kept so pre-subcommand invocations work
	// unchanged; the subcommands are the documented surface.
	replayDir := fs.String("replay", "", "legacy spelling of the replay subcommand: corpus dir to replay")
	retireDir := fs.String("retire", "", "legacy spelling of the retire subcommand: corpus dir to retire drifted findings from")
	promoteDir := fs.String("promote-dir", "", "retired-corpus directory for -retire (default <corpus>/../retired-corpus)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p4fuzz: unexpected arguments %v\n", fs.Args())
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	mode := pickEventMode(*liveEvents, *jsonEvents)
	if *retireDir != "" {
		return retire(ctx, *retireDir, *promoteDir, *trials, *trialsMax, mode)
	}
	if *replayDir != "" {
		return replay(ctx, *replayDir, *trials, *trialsMax, mode)
	}

	gcfg := gen.Config{
		MaxDepth:    *depth,
		MaxStmts:    *stmts,
		NumFields:   *fields,
		WithActions: true,
		Lattice:     *latSpec,
	}
	if err := gcfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		return 2
	}

	campaignMode := *corpusDir != "" || *minimize || *shard != "" || *resume || *mutateSeeds || *triageAfter
	if *triageAfter && *corpusDir == "" {
		fmt.Fprintln(os.Stderr, "p4fuzz: -triage needs -corpus-dir (triage reads the persisted corpus)")
		return 2
	}
	if !campaignMode {
		// The one-shot harness runs through the same Session as the
		// campaign engine, so -events/-events-json stream its job-done,
		// finding, and op-framing events exactly like campaign mode.
		t := *trials
		if t == 0 {
			t = 8
		}
		s, err := repro.NewSession(
			repro.WithSeed(*seed),
			repro.WithGenConfig(gcfg),
			repro.WithNIBudget(t, *trialsMax),
			repro.WithNIOracle(*niOracle),
			repro.WithExhaustBudget(*exhaustBudget, *exhaustProbes),
			repro.WithWorkers(*workers),
		)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
			return 2
		}
		stop := watchEvents(s, mode)
		rep, err := s.DiffFuzz(ctx, *n)
		stop()
		if rep == nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
			return 2
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: campaign aborted after %v: %v\n", rep.Elapsed.Round(time.Millisecond), err)
		}
		fmt.Fprint(mode.reportWriter(), repro.FormatFuzzReport(rep))
		if !rep.OK() || err != nil {
			return 1
		}
		return 0
	}

	shardIdx, numShards := 0, 1
	if *shard != "" {
		// Strict parse: Sscanf would accept trailing garbage ("0/2x") and
		// silently fuzz the wrong partition.
		i, n, ok := strings.Cut(*shard, "/")
		var err1, err2 error
		if ok {
			shardIdx, err1 = strconv.Atoi(i)
			numShards, err2 = strconv.Atoi(n)
		}
		if !ok || err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: -shard wants i/n (e.g. 0/4), got %q\n", *shard)
			return 2
		}
	}
	opts := []repro.SessionOption{
		repro.WithSeed(*seed),
		repro.WithGenConfig(gcfg),
		repro.WithNIBudget(*trials, *trialsMax),
		repro.WithNIOracle(*niOracle),
		repro.WithExhaustBudget(*exhaustBudget, *exhaustProbes),
		repro.WithWorkers(*workers),
		repro.WithShard(shardIdx, numShards),
		repro.WithCorpus(*corpusDir),
		repro.WithLog(os.Stderr),
	}
	if *mutateSeeds {
		opts = append(opts, repro.WithMutation(0))
	}
	if *minimize {
		opts = append(opts, repro.WithMinimize())
	}
	if *resume {
		opts = append(opts, repro.WithResume())
	}
	s, err := repro.NewSession(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		return 2
	}
	stop := watchEvents(s, mode)
	defer stop()
	rep, err := s.Campaign(ctx, *n)
	if rep == nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: campaign aborted after %v: %v\n", rep.Elapsed.Round(time.Millisecond), err)
	}
	fmt.Fprint(mode.reportWriter(), repro.FormatCampaignReport(rep))
	triageClean := true
	if *triageAfter {
		// The summary covers the whole corpus the campaign just grew, so
		// the nightly log ends with what the findings mean: the ranked
		// (class, rule, shape) clusters and the seed-novelty standings.
		trep, terr := s.Triage()
		if terr != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", terr)
			return 2
		}
		fmt.Fprintln(mode.reportWriter())
		fmt.Fprint(mode.reportWriter(), repro.FormatTriageReport(trep))
		// A malformed corpus entry fails the run just as it fails
		// p4triage: a green job must mean the corpus is trustworthy.
		triageClean = trep.OK()
	}
	if !rep.OK() || !triageClean || err != nil {
		return 1
	}
	return 0
}

func replayMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz replay", flag.ExitOnError)
	trials := fs.Int("trials", 0, "base NI trials for findings recorded without a budget (0 = 4)")
	trialsMax := fs.Int("trials-max", 0, "adaptive NI ceiling for findings recorded without a budget (0 = 32)")
	liveEvents := fs.Bool("events", false, "stream structured progress events to stderr while running")
	jsonEvents := fs.Bool("events-json", false, "stream events to stdout as one JSON object per line (the report moves to stderr)")
	fs.Parse(args)
	dir, ok := corpusArg(fs, "testdata/regression-corpus")
	if !ok {
		return 2
	}
	return replay(context.Background(), dir, *trials, *trialsMax, pickEventMode(*liveEvents, *jsonEvents))
}

func replay(ctx context.Context, dir string, trials, trialsMax int, mode eventMode) int {
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithNIBudget(trials, trialsMax),
		repro.WithLog(os.Stderr),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: replay: %v\n", err)
		return 2
	}
	stop := watchEvents(s, mode)
	rep, err := s.Replay(ctx)
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: replay: %v\n", err)
		return 2
	}
	fmt.Fprint(mode.reportWriter(), repro.FormatReplayReport(rep))
	if !rep.OK() {
		return 1
	}
	return 0
}

func retireMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz retire", flag.ExitOnError)
	promoteDir := fs.String("promote-dir", "", "retired-corpus directory (default <corpus>/../retired-corpus)")
	trials := fs.Int("trials", 0, "base NI trials for findings recorded without a budget (0 = 4)")
	trialsMax := fs.Int("trials-max", 0, "adaptive NI ceiling for findings recorded without a budget (0 = 32)")
	liveEvents := fs.Bool("events", false, "stream structured progress events to stderr while running")
	jsonEvents := fs.Bool("events-json", false, "stream events to stdout as one JSON object per line (the report moves to stderr)")
	fs.Parse(args)
	// No default corpus here, deliberately: retire deletes drifted entries
	// from the live corpus, and a bare `p4fuzz retire` must not clean the
	// checked-in regression seeds by accident.
	dir, ok := corpusArg(fs, "")
	if !ok {
		return 2
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "p4fuzz: retire needs an explicit corpus directory (it removes drifted findings)")
		return 2
	}
	return retire(context.Background(), dir, *promoteDir, *trials, *trialsMax, pickEventMode(*liveEvents, *jsonEvents))
}

func retire(ctx context.Context, dir, promoteDir string, trials, trialsMax int, mode eventMode) int {
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithPromoteDir(promoteDir),
		repro.WithNIBudget(trials, trialsMax),
		repro.WithLog(os.Stderr),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: retire: %v\n", err)
		return 2
	}
	stop := watchEvents(s, mode)
	rep, err := s.Retire(ctx)
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: retire: %v\n", err)
		return 2
	}
	fmt.Fprint(mode.reportWriter(), repro.FormatRetireReport(rep))
	if !rep.OK() {
		return 1
	}
	return 0
}

func compactMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz compact", flag.ExitOnError)
	trials := fs.Int("trials", 0, "base NI trials for findings recorded without a budget (0 = 4)")
	trialsMax := fs.Int("trials-max", 0, "adaptive NI ceiling for findings recorded without a budget (0 = 32)")
	liveEvents := fs.Bool("events", false, "stream structured progress events to stderr while running")
	jsonEvents := fs.Bool("events-json", false, "stream events to stdout as one JSON object per line (the report moves to stderr)")
	fs.Parse(args)
	// Like retire: compact rewrites and removes corpus entries, so it never
	// defaults to the checked-in regression corpus.
	dir, ok := corpusArg(fs, "")
	if !ok {
		return 2
	}
	if dir == "" {
		fmt.Fprintln(os.Stderr, "p4fuzz: compact needs an explicit corpus directory (it rewrites findings)")
		return 2
	}
	mode := pickEventMode(*liveEvents, *jsonEvents)
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithNIBudget(*trials, *trialsMax),
		repro.WithLog(os.Stderr),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: compact: %v\n", err)
		return 2
	}
	stop := watchEvents(s, mode)
	rep, err := s.Compact(context.Background())
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: compact: %v\n", err)
		return 2
	}
	fmt.Fprint(mode.reportWriter(), repro.FormatCompactReport(rep))
	if !rep.OK() {
		return 1
	}
	return 0
}

// indexMain opens the corpus — rebuilding and persisting its index when
// missing or stale — and prints the index-derived statistics as JSON.
// CI's round-trip gate deletes the index, reruns this, and compares.
func indexMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz index", flag.ExitOnError)
	outPath := fs.String("o", "", "write the stats JSON to this file instead of stdout")
	fs.Parse(args)
	dir, ok := corpusArg(fs, "testdata/regression-corpus")
	if !ok {
		return 2
	}
	c, err := repro.OpenCorpus(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: index: %v\n", err)
		return 2
	}
	out, err := json.MarshalIndent(c.Stats(), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: index: %v\n", err)
		return 2
	}
	out = append(out, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: index: %v\n", err)
			return 2
		}
	} else {
		os.Stdout.Write(out)
	}
	return 0
}

func triageMain(args []string) int {
	fs := flag.NewFlagSet("p4fuzz triage", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	novelty := fs.Int("novelty", 10, "max seeds in the novelty ranking (-1 = unlimited)")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	liveEvents := fs.Bool("events", false, "stream structured progress events to stderr while running")
	jsonEvents := fs.Bool("events-json", false, "stream events to stdout as one JSON object per line (the report moves to stderr)")
	fs.Parse(args)
	dir, ok := corpusArg(fs, "testdata/regression-corpus")
	if !ok {
		return 2
	}
	return triageReport(dir, *asJSON, *novelty, *outPath, pickEventMode(*liveEvents, *jsonEvents))
}

// triageReport renders one corpus's triage report — the same Session
// calls cmd/p4triage's shim makes.
func triageReport(dir string, asJSON bool, novelty int, outPath string, mode eventMode) int {
	s, err := repro.NewSession(
		repro.WithCorpus(dir),
		repro.WithMaxNovelty(novelty),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", err)
		return 2
	}
	stop := watchEvents(s, mode)
	rep, err := s.Triage()
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", err)
		return 2
	}
	var out []byte
	if asJSON {
		if out, err = repro.MarshalTriageReport(rep); err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", err)
			return 2
		}
	} else {
		out = []byte(repro.FormatTriageReport(rep))
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p4fuzz: triage: %v\n", err)
			return 2
		}
	} else {
		mode.reportWriter().Write(out)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}
