// Command p4fuzz runs a differential soundness-fuzzing campaign against
// the P4BID checker: it generates random programs, cross-checks the IFC
// checker against the baseline checker and the non-interference harness,
// and prints a verdict table.
//
// Usage:
//
//	p4fuzz [-n 1000] [-seed 1] [-trials 8] [-workers 0] [-depth 3] [-stmts 5] [-fields 3] [-timeout 0]
//
// Exit status 0 if the campaign found no implementation defects (no
// IFC-accepted program interfered, no generated program failed to parse or
// base-check, no runtime errors), 1 otherwise. Every finding is printed
// with the per-program generation seed, so a failure replays with
// p4fuzz -n 1 -seed <that seed> — passing the same -depth/-stmts/-fields
// flags as the original campaign (the seed only determines the program
// for a fixed generator configuration; the report echoes it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	n := flag.Int("n", 1000, "number of programs to generate and cross-check")
	seed := flag.Int64("seed", 1, "base generation seed (program i uses seed+i)")
	trials := flag.Int("trials", 8, "NI trials per program")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	depth := flag.Int("depth", 3, "max conditional nesting in generated programs")
	stmts := flag.Int("stmts", 5, "max statements per generated block")
	fields := flag.Int("fields", 3, "low/high header fields in generated programs")
	timeout := flag.Duration("timeout", 0, "overall campaign timeout (0 = none)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := repro.DiffFuzz(ctx, repro.FuzzConfig{
		N:        *n,
		Seed:     *seed,
		NITrials: *trials,
		Workers:  *workers,
		Gen: gen.Config{
			MaxDepth:    *depth,
			MaxStmts:    *stmts,
			NumFields:   *fields,
			WithActions: true,
		},
	})
	if rep == nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: %v\n", err)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4fuzz: campaign aborted after %v: %v\n", rep.Elapsed.Round(time.Millisecond), err)
	}
	fmt.Print(repro.FormatFuzzReport(rep))
	if !rep.OK() || err != nil {
		os.Exit(1)
	}
}
