// Command p4bid typechecks P4 programs with the P4BID information-flow
// control type system.
//
// Usage:
//
//	p4bid [-lattice two-point|diamond|chain:N|nparty:N] [-base] [-verbose] file.p4...
//
// Exit status 0 if every file typechecks, 1 otherwise. Each diagnostic
// cites the violated typing rule of the paper (e.g. [T-Assign]).
// With -base the ordinary (label-insensitive) Core P4 checker is used
// instead — the paper's p4c baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	latName := flag.String("lattice", "two-point", "security lattice: two-point, diamond, chain:N, or nparty:N")
	base := flag.Bool("base", false, "use the label-insensitive baseline checker instead of P4BID")
	verbose := flag.Bool("verbose", false, "print inferred pc_fn and pc_tbl labels for accepted programs")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: p4bid [flags] file.p4...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	lat, err := repro.LatticeByName(*latName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := false
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		prog, err := repro.Parse(file, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		if *base {
			res := repro.CheckBase(prog)
			if !res.OK {
				fmt.Fprintln(os.Stderr, res.Err())
				failed = true
				continue
			}
			fmt.Printf("%s: OK (base type system)\n", file)
			continue
		}
		res := repro.Check(prog, lat)
		if !res.OK {
			fmt.Fprintln(os.Stderr, res.Err())
			failed = true
			continue
		}
		fmt.Printf("%s: OK (non-interfering under lattice %s)\n", file, lat.Name())
		if *verbose {
			for name, pc := range res.ControlPC {
				fmt.Printf("  control %s checked at pc = %s\n", name, pc)
			}
			for name, pc := range res.FuncPC {
				fmt.Printf("  pc_fn(%s) = %s\n", name, pc)
			}
			for name, pc := range res.TablePC {
				fmt.Printf("  pc_tbl(%s) = %s\n", name, pc)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
