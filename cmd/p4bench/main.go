// Command p4bench regenerates the paper's evaluation artifacts:
//
//	p4bench -table1        Table 1 (typechecking time, baseline vs P4BID)
//	p4bench -matrix        Section 5 case-study accept/reject matrix
//	p4bench -scaling       extension: checker time vs program size and
//	                       lattice height
//	p4bench -pipeline      extension: sequential-vs-parallel batch-analysis
//	                       throughput over a generated corpus
//	p4bench -all           everything
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1")
	matrix := flag.Bool("matrix", false, "reproduce the Section 5 case-study matrix")
	scaling := flag.Bool("scaling", false, "run the scaling sweeps")
	pipe := flag.Bool("pipeline", false, "run the batch-analysis throughput sweep")
	corpus := flag.Int("corpus", 200, "corpus size for -pipeline")
	all := flag.Bool("all", false, "run everything")
	reps := flag.Int("reps", 50, "repetitions per timing measurement")
	flag.Parse()
	if *all {
		*table1, *matrix, *scaling, *pipe = true, true, true, true
	}
	if !*table1 && !*matrix && !*scaling && !*pipe {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		fmt.Print(bench.FormatTable1(bench.Table1(*reps)))
		fmt.Println()
	}
	if *matrix {
		fmt.Print(bench.FormatMatrix(bench.Matrix()))
		fmt.Println()
	}
	if *scaling {
		size := bench.ScalingBySize([]int{1, 2, 4, 8, 16, 32, 64}, *reps/5+1)
		lat := bench.ScalingByLattice([]int{2, 4, 8, 16, 32}, *reps)
		fmt.Print(bench.FormatScaling(size, lat))
		fmt.Println()
	}
	if *pipe {
		jobs := bench.PipelineCorpus(*corpus, 1)
		fmt.Print(bench.FormatPipeline(bench.PipelineSweep(jobs, nil)))
	}
}
