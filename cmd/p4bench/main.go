// Command p4bench regenerates the paper's evaluation artifacts:
//
//	p4bench -table1        Table 1 (typechecking time, baseline vs P4BID)
//	p4bench -matrix        Section 5 case-study accept/reject matrix
//	p4bench -scaling       extension: checker time vs program size and
//	                       lattice height
//	p4bench -pipeline      extension: sequential-vs-parallel batch-analysis
//	                       throughput over a generated corpus
//	p4bench -ni            NI trials/sec, tree-walking interpreter vs the
//	                       compiled engine, single-core and parallel
//	p4bench -exhaust       exhaustive NI oracle assignments/sec at secret
//	                       widths 4/8/12/16 (the BENCH_exhaust.json format)
//	p4bench -all           everything
//
// Every suite prints human-readable text to stdout; -o FILE additionally
// writes the measured rows as schema-versioned JSON. When only -ni ran,
// the file is an NI document (schema "p4bench/ni/v1", the BENCH_ni.json
// format); otherwise it is a combined document (schema "p4bench/v1") with
// one field per suite that ran.
//
// The CI benchmark gate is
//
//	p4bench -compare [-md] BASELINE.json CURRENT.json
//
// which exits 1 when the current NI run regressed against the committed
// baseline (see bench.CompareNI for the policy). When both files are
// exhaustive-oracle documents (schema "p4bench/exhaust/v1"), the gate is
// bench.CompareExhaust instead: enumeration identity must hold exactly,
// absolute rates are advisory.
//
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

// combinedDoc is the -o payload when more than one suite ran.
type combinedDoc struct {
	Schema         string                 `json:"schema"`
	Table1         []bench.Table1Row      `json:"table1,omitempty"`
	Matrix         []bench.MatrixRow      `json:"matrix,omitempty"`
	ScalingSize    []bench.ScalingRow     `json:"scaling_size,omitempty"`
	ScalingLattice []bench.LatticeRow     `json:"scaling_lattice,omitempty"`
	Pipeline       []bench.PipelineRow    `json:"pipeline,omitempty"`
	NI             *bench.NIBenchDoc      `json:"ni,omitempty"`
	Exhaust        *bench.ExhaustBenchDoc `json:"exhaust,omitempty"`
}

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1")
	matrix := flag.Bool("matrix", false, "reproduce the Section 5 case-study matrix")
	scaling := flag.Bool("scaling", false, "run the scaling sweeps")
	pipe := flag.Bool("pipeline", false, "run the batch-analysis throughput sweep")
	nib := flag.Bool("ni", false, "run the NI throughput suite (interpreter vs compiled engine)")
	exb := flag.Bool("exhaust", false, "run the exhaustive-oracle throughput suite (assignments/sec by secret width)")
	corpus := flag.Int("corpus", 200, "corpus size for -pipeline")
	all := flag.Bool("all", false, "run everything")
	reps := flag.Int("reps", 50, "repetitions per timing measurement")
	seed := flag.Int64("seed", 1, "workload seed for -ni")
	out := flag.String("o", "", "also write the measured rows as JSON to this file")
	compare := flag.Bool("compare", false, "compare two NI benchmark JSON files: -compare BASELINE CURRENT")
	md := flag.Bool("md", false, "with -compare, emit a markdown step summary instead of plain text")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(*md, flag.Args()))
	}
	if *all {
		*table1, *matrix, *scaling, *pipe, *nib, *exb = true, true, true, true, true, true
	}
	if !*table1 && !*matrix && !*scaling && !*pipe && !*nib && !*exb {
		flag.Usage()
		os.Exit(2)
	}
	doc := combinedDoc{Schema: "p4bench/v1"}
	suites := 0
	if *table1 {
		suites++
		doc.Table1 = bench.Table1(*reps)
		fmt.Print(bench.FormatTable1(doc.Table1))
		fmt.Println()
	}
	if *matrix {
		suites++
		doc.Matrix = bench.Matrix()
		fmt.Print(bench.FormatMatrix(doc.Matrix))
		fmt.Println()
	}
	if *scaling {
		suites++
		doc.ScalingSize = bench.ScalingBySize([]int{1, 2, 4, 8, 16, 32, 64}, *reps/5+1)
		doc.ScalingLattice = bench.ScalingByLattice([]int{2, 4, 8, 16, 32}, *reps)
		fmt.Print(bench.FormatScaling(doc.ScalingSize, doc.ScalingLattice))
		fmt.Println()
	}
	if *pipe {
		suites++
		jobs := bench.PipelineCorpus(*corpus, 1)
		doc.Pipeline = bench.PipelineSweep(jobs, nil)
		fmt.Print(bench.FormatPipeline(doc.Pipeline))
		fmt.Println()
	}
	if *nib {
		suites++
		ni, err := bench.NIBench(bench.NIBenchOptions{Seed: *seed, Parallel: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4bench: %v\n", err)
			os.Exit(1)
		}
		doc.NI = ni
		fmt.Print(bench.FormatNI(ni))
	}
	if *exb {
		suites++
		ex, err := bench.ExhaustBench(bench.ExhaustBenchOptions{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4bench: %v\n", err)
			os.Exit(1)
		}
		doc.Exhaust = ex
		fmt.Print(bench.FormatExhaust(ex))
	}
	if *out != "" {
		// A lone -ni run writes the NI document itself — the BENCH_ni.json
		// format the CI gate consumes.
		var payload any = doc
		if suites == 1 && doc.NI != nil {
			payload = doc.NI
		}
		if suites == 1 && doc.Exhaust != nil {
			payload = doc.Exhaust
		}
		if err := writeJSON(*out, payload); err != nil {
			fmt.Fprintf(os.Stderr, "p4bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadNIDoc reads an NI benchmark document, accepting both the bare
// BENCH_ni.json format and a combined -o document that embeds one.
func loadNIDoc(path string) (*bench.NIBenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc bench.NIBenchDoc
	if err := json.Unmarshal(data, &doc); err == nil && doc.Schema == bench.NIBenchSchema {
		return &doc, nil
	}
	var combined combinedDoc
	if err := json.Unmarshal(data, &combined); err == nil && combined.NI != nil {
		return combined.NI, nil
	}
	return nil, fmt.Errorf("%s: not an NI benchmark document (want schema %q)", path, bench.NIBenchSchema)
}

// loadExhaustDoc reads an exhaustive-oracle benchmark document, accepting
// both the bare BENCH_exhaust.json format and a combined -o document.
func loadExhaustDoc(path string) (*bench.ExhaustBenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc bench.ExhaustBenchDoc
	if err := json.Unmarshal(data, &doc); err == nil && doc.Schema == bench.ExhaustBenchSchema {
		return &doc, nil
	}
	var combined combinedDoc
	if err := json.Unmarshal(data, &combined); err == nil && combined.Exhaust != nil {
		return combined.Exhaust, nil
	}
	return nil, fmt.Errorf("%s: not an exhaustive benchmark document (want schema %q)", path, bench.ExhaustBenchSchema)
}

// runCompareExhaust gates a current exhaustive-bench run against its
// baseline; dispatched when both inputs carry the exhaust schema.
func runCompareExhaust(md bool, basePath, curPath string) int {
	base, err := loadExhaustDoc(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4bench: baseline: %v\n", err)
		return 1
	}
	cur, err := loadExhaustDoc(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4bench: current: %v\n", err)
		return 1
	}
	c := bench.CompareExhaust(base, cur)
	if md {
		fmt.Print(bench.MarkdownCompareExhaust(c))
		fmt.Println()
		fmt.Print(bench.MarkdownExhaust(cur))
	} else {
		for _, w := range c.Warnings {
			fmt.Printf("warning: %s\n", w)
		}
		for _, f := range c.Failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		if c.OK() {
			fmt.Println("ok: enumeration identity matches the baseline")
		}
	}
	if !c.OK() {
		return 1
	}
	return 0
}

func runCompare(md bool, args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: p4bench -compare [-md] BASELINE.json CURRENT.json")
		return 2
	}
	// NI documents keep priority (a combined doc can embed both suites;
	// the historical gate is the NI one) — the exhaust gate runs when the
	// baseline is not an NI document at all.
	base, err := loadNIDoc(args[0])
	if err != nil {
		if _, eerr := loadExhaustDoc(args[0]); eerr == nil {
			return runCompareExhaust(md, args[0], args[1])
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4bench: baseline: %v\n", err)
		return 1
	}
	cur, err := loadNIDoc(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4bench: current: %v\n", err)
		return 1
	}
	c := bench.CompareNI(base, cur)
	if md {
		fmt.Print(bench.MarkdownCompare(c, base, cur))
		fmt.Println()
		fmt.Print(bench.MarkdownNI(cur))
	} else {
		fmt.Printf("baseline geomean speedup %.2fx -> current %.2fx\n", base.SpeedupGeomean, cur.SpeedupGeomean)
		for _, w := range c.Warnings {
			fmt.Printf("warning: %s\n", w)
		}
		for _, f := range c.Failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		if c.OK() {
			fmt.Println("ok: no regression against the baseline")
		}
	}
	if !c.OK() {
		return 1
	}
	return 0
}
